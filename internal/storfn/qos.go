package storfn

import (
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
)

// qosSrc is a token-bucket QoS classifier: a per-VM block budget lives in
// the qos map (entry 0, u64 tokens); every I/O atomically consumes its
// block count or is rejected with Namespace Not Ready, and the control
// plane refills the bucket on its own schedule by writing the map — rate
// limits change live, with no VM or router involvement. This is the class
// of policy the paper contrasts against fixed stacks, where QoS has to be
// implemented inside the storage stack itself.
const qosSrc = `
; token-bucket QoS + partition mediation
	mov   r9, r1
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]        ; partition start
	ldxdw r7, [r0+8]        ; partition blocks
	ldxb  r3, [r9+32]       ; opcode
	jeq   r3, 0, passthru   ; flush is free
	ldxdw r4, [r9+72]       ; slba
	ldxw  r5, [r9+80]
	and   r5, 0xffff
	add   r5, 1             ; nblocks
	mov   r8, r5
	add   r5, r4
	jgt   r5, r7, oob
	add   r4, r6
	stxdw [r9+72], r4       ; translate LBA
; charge the token bucket
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, qos
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r5, [r0+0]        ; tokens
	jlt   r5, r8, throttle  ; not enough budget
	sub   r5, r8
	stxdw [r0+0], r5        ; consume
passthru:
	mov   r0, 0x410000      ; SEND_HQ | WILL_COMPLETE_HQ
	exit
throttle:
	mov   r0, 0x2000082     ; COMPLETE | NamespaceNotReady (retryable)
	exit
oob:
	mov   r0, 0x2000080
	exit
internal:
	mov   r0, 0x2000006
	exit
`

// QoSClassifier returns the token-bucket classifier plus its two live maps:
// the partition config and the token bucket (refill by SetU64(0, 0, n)).
func QoSClassifier(part device.Partition) (*ebpf.Program, *ebpf.ArrayMap, *ebpf.ArrayMap) {
	cfg := core.NewPartitionConfigMap(part)
	bucket := ebpf.NewArrayMap(8, 1)
	prog := ebpf.MustAssemble(qosSrc, "qos", map[string]ebpf.Map{"cfg": cfg, "qos": bucket}, nil)
	return prog, cfg, bucket
}

func init() {
	// Expose the source through the inventory used by Table I / the asm tool.
	classifierExtra["qos"] = qosSrc
}

// classifierExtra holds classifiers registered outside the core trio.
var classifierExtra = map[string]string{}

// qosClassSrc is the class-tagging partition classifier: the same
// sandboxed policy that mediates and translates LBAs also tags each
// command's QoS scheduling class, looked up per opcode in the class
// policy map and installed via the qos_set_class helper. This is the
// "policy in the program" integration the tentpole asks for — the
// fast/kernel/notify decision and the scheduling priority come from one
// verified program, and the control plane retunes priorities by writing
// the map, with no reload.
const qosClassSrc = `
; class-tagging partition classifier
	mov   r9, r1
	mov   r2, 0
	stxw  [r10-4], r2
	ldmap r1, cfg
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, internal
	ldxdw r6, [r0+0]        ; partition start
	ldxdw r7, [r0+8]        ; partition blocks
	ldxb  r8, [r9+32]       ; opcode
; tag the scheduling class for this opcode
	stxw  [r10-4], r8
	ldmap r1, class
	mov   r2, r10
	add   r2, -4
	call  map_lookup_elem
	jeq   r0, 0, tagged     ; no policy entry: default class
	ldxb  r1, [r0+0]
	call  qos_set_class
tagged:
	jeq   r8, 0, passthru   ; flush carries no LBA
	ldxdw r4, [r9+72]       ; slba
	ldxw  r5, [r9+80]
	and   r5, 0xffff
	add   r5, 1             ; nblocks
	add   r5, r4
	jgt   r5, r7, oob
	add   r4, r6
	stxdw [r9+72], r4       ; translate LBA
passthru:
	mov   r0, 0x410000      ; SEND_HQ | WILL_COMPLETE_HQ
	exit
oob:
	mov   r0, 0x2000080
	exit
internal:
	mov   r0, 0x2000006
	exit
`

// QoSClassClassifier returns the class-tagging partition classifier plus
// its live maps: the partition config and the per-opcode class policy map
// (see core.NewQoSClassMap / core.SetOpcodeClass).
func QoSClassClassifier(part device.Partition) (*ebpf.Program, *ebpf.ArrayMap, *ebpf.ArrayMap) {
	cfg := core.NewPartitionConfigMap(part)
	class := core.NewQoSClassMap()
	prog := ebpf.MustAssemble(qosClassSrc, "qosclass", map[string]ebpf.Map{"cfg": cfg, "class": class}, nil)
	return prog, cfg, class
}

func init() {
	classifierExtra["qosclass"] = qosClassSrc
}
