package storfn_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/storfn"
)

// shippedClassifiers builds every shipped classifier with fresh map
// instances (so two builds mutate independent state).
func shippedClassifiers() map[string]func() *ebpf.Program {
	part := device.Partition{Start: 4096, Blocks: 8192}
	return map[string]func() *ebpf.Program{
		"partition": func() *ebpf.Program {
			p, _ := storfn.PartitionClassifier(part)
			return p
		},
		"encryptor": func() *ebpf.Program {
			p, _ := storfn.EncryptorClassifier(part)
			return p
		},
		"replicator": func() *ebpf.Program {
			p, _ := storfn.ReplicatorClassifier(part)
			return p
		},
		"qos": func() *ebpf.Program {
			p, _, _ := storfn.QoSClassifier(part)
			return p
		},
		"cache": func() *ebpf.Program {
			p, _ := storfn.CacheClassifier(part, core.NewHotHints(3, 1<<10), 2)
			return p
		},
	}
}

// genCtx synthesizes a classifier context: half structured (plausible NVMe
// I/O commands, mostly in-partition), half random bytes, so both the happy
// paths and the error/bounds paths run on both tiers.
func genCtx(rng *rand.Rand) []byte {
	ctx := make([]byte, core.CtxSize)
	if rng.Intn(2) == 0 {
		rng.Read(ctx)
	}
	binary.LittleEndian.PutUint32(ctx[core.CtxOffHook:], uint32(rng.Intn(4)))
	cmd := ctx[core.CtxOffCmd:]
	cmd[0] = byte(rng.Intn(4))                                      // opcode: admin/write/read/..
	binary.LittleEndian.PutUint64(cmd[40:], uint64(rng.Intn(9000))) // SLBA, sometimes out of range
	binary.LittleEndian.PutUint32(cmd[48:], uint32(rng.Intn(32)))   // NLB
	return ctx
}

// TestShippedClassifierParity runs every shipped classifier on both
// execution tiers (independent map state each) across a shared command
// sequence and requires identical action words and context writebacks —
// the contract that lets the router run them compiled by default.
func TestShippedClassifierParity(t *testing.T) {
	for name, build := range shippedClassifiers() {
		t.Run(name, func(t *testing.T) {
			progI := build()
			progC := build()
			cp, err := ebpf.Compile(progC, core.NewVerifier())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			vmI, vmC := ebpf.NewVM(nil), ebpf.NewVM(nil)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 500; i++ {
				ctxI := genCtx(rng)
				ctxC := append([]byte(nil), ctxI...)
				retI, errI := vmI.Run(progI, ctxI)
				retC, errC := vmC.RunCompiled(cp, ctxC)
				if (errI == nil) != (errC == nil) {
					t.Fatalf("cmd %d: error mismatch: %v vs %v", i, errI, errC)
				}
				if errI == nil && retI != retC {
					t.Fatalf("cmd %d: action %#x (interp) != %#x (compiled)", i, retI, retC)
				}
				if !bytes.Equal(ctxI, ctxC) {
					t.Fatalf("cmd %d: ctx writeback diverged", i)
				}
			}
		})
	}
}

// BenchmarkClassifierSuite measures every shipped classifier on both tiers
// over a representative in-partition read command.
func BenchmarkClassifierSuite(b *testing.B) {
	ctx := make([]byte, core.CtxSize)
	cmd := ctx[core.CtxOffCmd:]
	cmd[0] = 2 // read
	binary.LittleEndian.PutUint64(cmd[40:], 128)
	binary.LittleEndian.PutUint32(cmd[48:], 7)

	for name, build := range shippedClassifiers() {
		p := build()
		cp, err := ebpf.Compile(build(), core.NewVerifier())
		if err != nil {
			b.Fatalf("%s: compile: %v", name, err)
		}
		b.Run(fmt.Sprintf("%s/interpreter", name), func(b *testing.B) {
			vm := ebpf.NewVM(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Run(p, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/compiled", name), func(b *testing.B) {
			vm := ebpf.NewVM(nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vm.RunCompiled(cp, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
