package storfn_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/supervise"
	"nvmetro/internal/vm"
	"nvmetro/internal/xts"
)

// supTestPolicy is a watchdog fast enough for microsecond-scale tests,
// with a restart backoff long enough to probe degraded-mode behaviour
// before the function comes back.
func supTestPolicy() supervise.Policy {
	pol := supervise.DefaultPolicy()
	pol.HeartbeatInterval = 10 * sim.Microsecond
	pol.StallThreshold = 100 * sim.Microsecond
	pol.ResidencyDeadline = 2 * sim.Millisecond
	pol.RestartBackoff = 2 * sim.Millisecond
	pol.RestartBackoffCap = 2 * sim.Millisecond
	pol.RestartJitter = 0
	return pol
}

func waitState(p *sim.Proc, sup *supervise.Supervisor, want supervise.State, bound sim.Duration) bool {
	deadline := p.Now().Add(bound)
	for sup.State() != want && p.Now() < deadline {
		p.Sleep(50 * sim.Microsecond)
	}
	return sup.State() == want
}

// Encryption never degrades to plaintext: a write stranded by the UIF
// crash fails with a retryable status and leaves the disk untouched,
// degraded-mode writes fail the same way, and after the supervised restart
// writes land as proper XTS ciphertext again.
func TestSupervisedEncryptorNeverPlaintext(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()
	bdev := blockdev.NewNVMeBlockDev(h.env, part, h.cpu, 11, blockdev.DefaultCosts())
	ring := blockdev.NewURing(h.env, bdev, blockdev.DefaultURingCosts())
	fn := storfn.NewEncryptorSupervision(part, testKey, storfn.DefaultEncryptorCosts())
	sup, err := supervise.Launch(h.env, h.fw, vc, ring, 256, fn, supTestPolicy())
	if err != nil {
		t.Fatal(err)
	}

	plain := bytes.Repeat([]byte{0xd5, 0x11}, 2048) // 8 blocks, never all-zero
	zero := make([]byte, len(plain))
	h.run(t, func(p *sim.Proc) {
		// Strand a write on the wedged UIF: reconciliation must fail it
		// with a retryable status, not complete it around the encryptor.
		sup.Attachment().Wedge(sim.Second)
		if st := doIO(p, v, disk, vm.OpWrite, 100, plain); st.OK() {
			t.Fatal("stranded write completed OK around the dead encryptor")
		} else if st != nvme.SCNSNotReady {
			t.Fatalf("stranded write status = %v, want retryable SCNSNotReady", st)
		}
		raw := make([]byte, len(plain))
		h.store.ReadBlocks(100, raw)
		if bytes.Equal(raw, plain) {
			t.Fatal("stranded write persisted plaintext")
		}
		if !bytes.Equal(raw, zero) {
			t.Fatal("stranded write touched the device")
		}
		// Degraded mode is fail-stop: same retryable error, disk untouched.
		if sup.State() != supervise.StateDegraded {
			t.Fatalf("state = %v after detection, want degraded", sup.State())
		}
		if st := doIO(p, v, disk, vm.OpWrite, 100, plain); st.OK() || st != nvme.SCNSNotReady {
			t.Fatalf("degraded write status = %v, want SCNSNotReady", st)
		}
		h.store.ReadBlocks(100, raw)
		if !bytes.Equal(raw, zero) {
			t.Fatal("degraded write touched the device")
		}
		// After restart+promote the write lands, encrypted.
		if !waitState(p, sup, supervise.StateRouted, 20*sim.Millisecond) {
			t.Fatalf("encryptor never restarted: %s", sup.String())
		}
		if st := doIO(p, v, disk, vm.OpWrite, 100, plain); !st.OK() {
			t.Fatalf("write after restart: %v", st)
		}
		h.store.ReadBlocks(100, raw)
		if bytes.Equal(raw, plain) {
			t.Fatal("plaintext reached the disk after restart")
		}
		want := make([]byte, len(plain))
		xts.Must(testKey).EncryptBlocks(want, plain, 100, 512)
		if !bytes.Equal(raw, want) {
			t.Fatal("restarted encryptor broke the on-disk XTS format")
		}
		got := make([]byte, len(plain))
		if st := doIO(p, v, disk, vm.OpRead, 100, got); !st.OK() || !bytes.Equal(got, plain) {
			t.Fatalf("read-back after restart: %v", st)
		}
	})
	if sup.ReconciledErr == 0 || sup.ReconciledOK != 0 || sup.Requeued != 0 {
		t.Fatalf("encryptor reconcile must fail-stop every stranded command: %s", sup.String())
	}
}

// A cache UIF killed mid-fill loses no read, and cache degradation is
// coherent: writes landing on the fast path while the cache is down can
// never be shadowed by the dead generation's entries after restart.
func TestSupervisedCacheKilledMidFillStaysCoherent(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()
	cp := storfn.DefaultCacheParams()
	bdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(h.dev, 1), h.cpu, 11, blockdev.DefaultCosts())
	ring := blockdev.NewURing(h.env, bdev, blockdev.DefaultURingCosts())
	fn := storfn.NewCacherSupervision(h.env, part, cp)
	sup, err := supervise.Launch(h.env, h.fw, vc, ring, 256, fn, supTestPolicy())
	if err != nil {
		t.Fatal(err)
	}

	dataA := bytes.Repeat([]byte{0xa1, 7}, 2048) // 8 blocks = one heat bucket
	dataB := bytes.Repeat([]byte{0xb2, 9}, 2048)
	h.run(t, func(p *sim.Proc) {
		gen1 := fn.Cacher()
		// Install A at LBA 200 and heat the bucket until reads are cached.
		if st := doIO(p, v, disk, vm.OpWrite, 200, dataA); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		got := make([]byte, len(dataA))
		for i := 0; i < 3; i++ {
			if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, dataA) {
				t.Fatalf("heat read %d: %v", i, st)
			}
		}
		if gen1.ReqHits == 0 {
			t.Fatalf("bucket never went hot (hits=%d fills=%d)", gen1.ReqHits, gen1.ReqFills)
		}
		// Force a miss on the hot bucket and kill the UIF while the fill's
		// backend read is in flight on the ring.
		gen1.Cache().Invalidate(200, 8)
		fillDone, fillSt := false, nvme.SCSuccess
		h.env.Go("mid-fill-read", func(p *sim.Proc) {
			buf := make([]byte, len(dataA))
			fillSt = doIO(p, v, disk, vm.OpRead, 200, buf)
			if fillSt.OK() && !bytes.Equal(buf, dataA) {
				t.Error("mid-fill read returned wrong data")
			}
			fillDone = true
		})
		p.Sleep(30 * sim.Microsecond) // let the fill reach the backend
		sup.Attachment().Kill()
		// The watchdog reconciles the stranded fill onto the fast path.
		for p.Now() < sim.Time(20*sim.Millisecond) && !fillDone {
			p.Sleep(50 * sim.Microsecond)
		}
		if !fillDone {
			t.Fatal("mid-fill read lost by the crash")
		}
		if !fillSt.OK() {
			t.Fatalf("mid-fill read failed: %v", fillSt)
		}
		// While degraded, overwrite the previously cached block on the
		// fast path — the dead generation still holds A and cannot see
		// this write.
		if sup.State() != supervise.StateDegraded {
			t.Fatalf("state = %v, want degraded", sup.State())
		}
		if st := doIO(p, v, disk, vm.OpWrite, 200, dataB); !st.OK() {
			t.Fatalf("degraded write: %v", st)
		}
		if gen1.ReqWrites != 1 {
			t.Fatalf("degraded write reached the dead cache UIF (writes=%d)", gen1.ReqWrites)
		}
		// After restart the cache is cold: no stale A, reads return B.
		if !waitState(p, sup, supervise.StateRouted, 20*sim.Millisecond) {
			t.Fatalf("cacher never restarted: %s", sup.String())
		}
		if fn.Cacher() == gen1 {
			t.Fatal("restart reused the dead cache generation")
		}
		for i := 0; i < 3; i++ {
			if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() {
				t.Fatalf("read %d after restart: %v", i, st)
			}
			if !bytes.Equal(got, dataB) {
				t.Fatalf("stale cache hit after restart on read %d", i)
			}
		}
	})
	if sup.Detections == 0 || sup.Restarts == 0 {
		t.Fatalf("supervision did not run: %s", sup.String())
	}
}

// A replicator UIF crashing in the middle of a resync pass must not wedge
// the mirror: the pass aborts cleanly, writes arriving while degraded are
// dirty-tracked by the native fallback classifier, and the restarted
// generation drains everything back to a bit-identical secondary.
func TestSupervisedReplicatorCrashMidResyncConverges(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()

	remoteCPU := sim.NewCPU(h.env, 4)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rstore := device.NewMemStore(512)
	rdev := device.New(h.env, rp, rstore)
	rbdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(rdev, 1), remoteCPU, 3, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(h.env)
	tgt := nvmeof.NewTarget(h.env, rbdev, remoteCPU)
	ini := nvmeof.NewInitiator(h.env, link, tgt)
	if err := ini.SetRecovery(tightOfRecovery); err != nil {
		t.Fatal(err)
	}
	rep := storfn.NewReplicator()
	ring := blockdev.NewURing(h.env, ini, blockdev.DefaultURingCosts())
	fn := storfn.NewReplicatorSupervision(part, rep)
	sup, err := supervise.Launch(h.env, h.fw, vc, ring, 256, fn, supTestPolicy())
	if err != nil {
		t.Fatal(err)
	}
	primary := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(h.dev, 1), h.cpu, 12, blockdev.DefaultCosts())
	rcfg := storfn.DefaultResyncConfig()
	rcfg.Rate = 20e6 // slow drain: a wide mid-resync window to crash into
	rs, err := storfn.NewResyncer(h.env, rep, primary, sup.Attachment(), h.cpu.ThreadOn(13, "resync"), h.dev.Params().LBAShift, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	fn.SetResyncer(rs)
	ini.OnReconnect(rs.OnLinkUp)

	link.ScheduleOutage(0, 2*sim.Millisecond)
	dataA := make([]byte, 64<<10) // big enough that the slow resync pass is interruptible
	for i := range dataA {
		dataA[i] = byte(i*7 + 3)
	}
	dataC := bytes.Repeat([]byte{0xcc, 0x33}, 2048)
	h.run(t, func(p *sim.Proc) {
		// Dirty a large range during the outage (primary-only, degraded).
		if st := doIO(p, v, disk, vm.OpWrite, 200, dataA); !st.OK() {
			t.Fatalf("degraded write: %v", st)
		}
		// Wait for the link-up resync to start, then crash the UIF mid-pass.
		for p.Now() < sim.Time(20*sim.Millisecond) && rs.State() != storfn.StateResyncing {
			p.Sleep(20 * sim.Microsecond)
		}
		if rs.State() != storfn.StateResyncing {
			t.Fatal("resync never started after link-up")
		}
		sup.Attachment().Kill()
		if !waitState(p, sup, supervise.StateDegraded, 5*sim.Millisecond) {
			t.Fatalf("crash not detected: %s", sup.String())
		}
		// A write landing while degraded goes primary-only through the
		// native fallback classifier and is dirty-tracked for resync.
		before := rep.Dirty.Blocks()
		if st := doIO(p, v, disk, vm.OpWrite, 4096, dataC); !st.OK() {
			t.Fatalf("write while degraded: %v", st)
		}
		if fn.DegradedWrites == 0 || rep.Dirty.Blocks() <= before {
			t.Fatalf("degraded write not dirty-tracked (degraded=%d dirty %d->%d)",
				fn.DegradedWrites, before, rep.Dirty.Blocks())
		}
		// Restart, re-point the resyncer at the new generation and drain.
		if !waitState(p, sup, supervise.StateRouted, 20*sim.Millisecond) {
			t.Fatalf("replicator never restarted: %s", sup.String())
		}
		deadline := p.Now().Add(2 * sim.Second)
		for rs.State() != storfn.StateInSync && p.Now() < deadline {
			if rs.State() == storfn.StateDegraded {
				rs.Trigger()
			}
			p.Sleep(sim.Millisecond)
		}
		if rs.State() != storfn.StateInSync || rep.Dirty.Blocks() != 0 {
			t.Fatalf("mirror did not converge: state=%v dirty=%d", rs.State(), rep.Dirty.Blocks())
		}
	})
	if h.store.ContentCRC() != rstore.ContentCRC() {
		t.Fatal("secondary diverged from primary after crash-mid-resync recovery")
	}
	if sup.Detections == 0 || sup.Restarts == 0 {
		t.Fatalf("supervision did not run: %s", sup.String())
	}
	// Stranded secondary writes reconcile as degraded-complete (the
	// primary leg carried the data), never as guest errors.
	if sup.ReconciledErr != 0 {
		t.Fatalf("replicator reconcile failed guest writes: %s", sup.String())
	}
}

// The supervised replicator keeps mirroring correctly across a crash with
// no resync in flight: post-restart writes replicate to the secondary
// again (promotion restored the routed classifier and ring wiring).
func TestSupervisedReplicatorMirrorsAfterRestart(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()

	remoteCPU := sim.NewCPU(h.env, 4)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rstore := device.NewMemStore(512)
	rdev := device.New(h.env, rp, rstore)
	rbdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(rdev, 1), remoteCPU, 3, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(h.env)
	tgt := nvmeof.NewTarget(h.env, rbdev, remoteCPU)
	ini := nvmeof.NewInitiator(h.env, link, tgt)
	rep := storfn.NewReplicator()
	ring := blockdev.NewURing(h.env, ini, blockdev.DefaultURingCosts())
	fn := storfn.NewReplicatorSupervision(part, rep)
	sup, err := supervise.Launch(h.env, h.fw, vc, ring, 256, fn, supTestPolicy())
	if err != nil {
		t.Fatal(err)
	}
	primary := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(h.dev, 1), h.cpu, 12, blockdev.DefaultCosts())
	rs, err := storfn.NewResyncer(h.env, rep, primary, sup.Attachment(), h.cpu.ThreadOn(13, "resync"), h.dev.Params().LBAShift, storfn.DefaultResyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	fn.SetResyncer(rs)
	ini.OnReconnect(rs.OnLinkUp)

	data := bytes.Repeat([]byte{0x5a, 0xa5}, 2048)
	h.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 64, data); !st.OK() {
			t.Fatalf("mirrored write: %v", st)
		}
		sup.Attachment().Wedge(sim.Second)
		if st := doIO(p, v, disk, vm.OpWrite, 128, data); !st.OK() {
			t.Fatalf("write across the wedge: %v", st)
		}
		if !waitState(p, sup, supervise.StateRouted, 20*sim.Millisecond) {
			t.Fatalf("replicator never restarted: %s", sup.String())
		}
		if st := doIO(p, v, disk, vm.OpWrite, 192, data); !st.OK() {
			t.Fatalf("write after restart: %v", st)
		}
		deadline := p.Now().Add(2 * sim.Second)
		for rs.State() != storfn.StateInSync && p.Now() < deadline {
			if rs.State() == storfn.StateDegraded {
				rs.Trigger()
			}
			p.Sleep(sim.Millisecond)
		}
		if rs.State() != storfn.StateInSync {
			t.Fatalf("mirror did not converge: state=%v dirty=%d", rs.State(), rep.Dirty.Blocks())
		}
	})
	if h.store.ContentCRC() != rstore.ContentCRC() {
		t.Fatal("secondary diverged after wedge recovery")
	}
}
