package storfn

import (
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
)

// Replicator is the live disk-replication UIF: the classifier already sent
// the write to the local primary disk (fast path); this UIF forwards the
// same write to the remote secondary disk through io_uring over the
// NVMe-oF initiator. Mirroring is synchronous — the router completes the
// guest request only when both legs finish — which lets the VM's buffers
// be reused immediately, as the paper notes.
//
// When the secondary leg fails (media error on the remote disk, or the
// fabric exhausts its retries), the Replicator degrades rather than
// failing the guest write: the primary already holds the data, so the
// guest completes successfully and the stale LBA range is recorded in
// Dirty for a later resync.
type Replicator struct {
	// CopyRate models pulling the write payload out of guest memory.
	CopyRate float64

	// Dirty is the set of guest LBA ranges whose secondary copy is stale.
	Dirty DirtyRegions

	// Guard, when set, verifies the payload pulled from guest memory
	// against its protection info before it is fanned out to the mirror:
	// a payload corrupted between stamping and forwarding must not
	// propagate to the replica.
	Guard BlockVerifier

	// resync, when attached (NewResyncer), observes secondary-leg
	// outcomes to drive the mirror-consistency state machine.
	resync *Resyncer

	// Stats
	Forwarded       uint64
	Degraded        uint64 // guest writes acknowledged from the primary alone
	SecondaryErrors uint64 // non-OK secondary-leg completions observed
	GuardErrors     uint64 // payloads failing protection-info verification
}

// BlockVerifier checks a payload against per-block protection info,
// keyed by device-absolute LBA (satisfied by *integrity.Guard).
type BlockVerifier interface {
	Verify(lba uint64, data []byte) bool
}

// NewReplicator creates the mirroring UIF.
func NewReplicator() *Replicator { return &Replicator{CopyRate: 10e9} }

// Work implements uif.Handler.
func (r *Replicator) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	if req.Cmd.Opcode() != nvme.OpWrite {
		// Reads are filtered out by the classifier and never reach us.
		return false, nvme.SCInvalidOpcode
	}
	n := int(req.NBytes())
	buf := make([]byte, n)
	if err := req.ReadData(buf); err != nil {
		return false, nvme.SCDataXferError
	}
	th.Exec(p, sim.Duration(float64(n)/r.CopyRate*1e9))
	lba, blocks := req.Cmd.SLBA(), uint64(req.Cmd.Blocks())
	if r.Guard != nil && !r.Guard.Verify(lba, buf) {
		// The payload no longer matches its protection info: either it was
		// corrupted between stamping and forwarding, or a racing guest
		// write re-stamped the range after this payload was captured. Both
		// are indistinguishable here and neither may fail the guest write
		// (the primary leg carries the stamped data) — mark the range
		// dirty so resync re-copies it from the verified primary.
		r.GuardErrors++
		r.Dirty.Add(lba, blocks)
		if r.resync != nil {
			r.resync.noteSecondaryFailure(lba, blocks)
		}
	}
	r.Forwarded++
	req.SubmitBackendWriteThen(p, th, buf, func(p *sim.Proc, th *sim.Thread, st nvme.Status) {
		if !st.OK() {
			// Degraded mode: the primary write (fast path) carries the
			// data; mark the region dirty and acknowledge the guest.
			r.SecondaryErrors++
			r.Degraded++
			r.Dirty.Add(lba, blocks)
			if r.resync != nil {
				r.resync.noteSecondaryFailure(lba, blocks)
			}
			st = nvme.SCSuccess
		} else if r.resync != nil {
			// A mirrored write that lands inside the in-flight resync
			// window may be clobbered by the stale copy; re-dirty it.
			r.resync.noteGuestWrite(lba, blocks)
		}
		req.CompleteAsync(st)
	})
	return true, 0
}
