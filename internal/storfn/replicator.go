package storfn

import (
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/uif"
)

// Replicator is the live disk-replication UIF: the classifier already sent
// the write to the local primary disk (fast path); this UIF forwards the
// same write to the remote secondary disk through io_uring over the
// NVMe-oF initiator. Mirroring is synchronous — the router completes the
// guest request only when both legs finish — which lets the VM's buffers
// be reused immediately, as the paper notes.
type Replicator struct {
	// CopyRate models pulling the write payload out of guest memory.
	CopyRate float64

	// Stats
	Forwarded uint64
}

// NewReplicator creates the mirroring UIF.
func NewReplicator() *Replicator { return &Replicator{CopyRate: 10e9} }

// Work implements uif.Handler.
func (r *Replicator) Work(p *sim.Proc, th *sim.Thread, req *uif.Request) (bool, nvme.Status) {
	if req.Cmd.Opcode() != nvme.OpWrite {
		// Reads are filtered out by the classifier and never reach us.
		return false, nvme.SCInvalidOpcode
	}
	n := int(req.NBytes())
	buf := make([]byte, n)
	if err := req.ReadData(buf); err != nil {
		return false, nvme.SCDataXferError
	}
	th.Exec(p, sim.Duration(float64(n)/r.CopyRate*1e9))
	r.Forwarded++
	req.SubmitBackendWrite(p, th, buf)
	return true, 0
}
