package storfn_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sgx"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
	"nvmetro/internal/xts"
)

var testKey = bytes.Repeat([]byte{0x5c}, 64)

// host is a full single-host NVMetro deployment for integration tests.
type host struct {
	env    *sim.Env
	cpu    *sim.CPU
	dev    *device.Device
	store  *device.MemStore
	router *core.Router
	fw     *uif.Framework
}

func newHost() *host {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 16)
	store := device.NewMemStore(512)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, store)
	router := core.NewRouter(env, core.DefaultRouterCosts(), []*sim.Thread{cpu.ThreadOn(8, "router")})
	fw := uif.NewFramework(env, uif.DefaultCosts(), []*sim.Thread{cpu.ThreadOn(9, "uif"), cpu.ThreadOn(10, "uif")})
	return &host{env: env, cpu: cpu, dev: dev, store: store, router: router, fw: fw}
}

func (h *host) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	h.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; h.env.Stop() })
	h.env.RunUntil(sim.Time(60 * sim.Second))
	if !ok {
		t.Fatal("test did not finish in simulated time")
	}
}

func (h *host) addVM(t *testing.T, id int) (*vm.VM, *core.Controller, *vm.NVMeDisk) {
	v := vm.New(h.env, id, h.cpu, id, 1, 32<<20, vm.DefaultVirtCosts())
	vc := h.router.Attach(v, device.WholeNamespace(h.dev, 1))
	disk := vm.NewNVMeDisk(v, vc, 64, vm.DefaultDriverCosts())
	return v, vc, disk
}

func doIO(p *sim.Proc, v *vm.VM, disk *vm.NVMeDisk, op vm.Op, lba uint64, data []byte) nvme.Status {
	base, pages, err := v.Mem.AllocBuffer(uint32(len(data)))
	if err != nil {
		panic(err)
	}
	if op == vm.OpWrite {
		v.Mem.WriteAt(data, base)
	}
	r := &vm.Req{Op: op, LBA: lba, Blocks: uint32(len(data)) / 512, Buf: base, BufPages: pages}
	st := vm.SubmitAndWait(p, disk, v.VCPU(0), r)
	if op == vm.OpRead && st.OK() {
		v.Mem.ReadAt(data, base)
	}
	return st
}

// setupEncryption wires the encryption storage function for a VM.
func setupEncryption(t *testing.T, h *host, vc *core.Controller) *storfn.Encryptor {
	t.Helper()
	part := vc.Partition()
	prog, _ := storfn.EncryptorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	enc, err := storfn.NewEncryptor(testKey, storfn.DefaultEncryptorCosts())
	if err != nil {
		t.Fatal(err)
	}
	bdev := blockdev.NewNVMeBlockDev(h.env, part, h.cpu, 11, blockdev.DefaultCosts())
	ring := blockdev.NewURing(h.env, bdev, blockdev.DefaultURingCosts())
	h.fw.Attach(vc.AttachUIF(256), enc, ring)
	return enc
}

func TestEncryptionEndToEnd(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	enc := setupEncryption(t, h, vc)
	plain := make([]byte, 8192)
	for i := range plain {
		plain[i] = byte(i * 31)
	}
	h.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 100, plain); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// The device holds ciphertext, in dm-crypt-compatible XTS format.
		raw := make([]byte, len(plain))
		h.store.ReadBlocks(100, raw)
		if bytes.Equal(raw, plain) {
			t.Fatal("plaintext reached the disk")
		}
		want := make([]byte, len(plain))
		xts.Must(testKey).EncryptBlocks(want, plain, 100, 512)
		if !bytes.Equal(raw, want) {
			t.Fatal("on-disk format not XTS-plain64 compatible")
		}
		// The guest reads back transparent plaintext.
		got := make([]byte, len(plain))
		if st := doIO(p, v, disk, vm.OpRead, 100, got); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(got, plain) {
			t.Fatal("guest read is not the original plaintext")
		}
		// Flushes pass straight to the device.
		f := &vm.Req{Op: vm.OpFlush}
		if st := vm.SubmitAndWait(p, disk, v.VCPU(0), f); !st.OK() {
			t.Fatalf("flush: %v", st)
		}
	})
	if enc.Reads != 1 || enc.Writes != 1 {
		t.Fatalf("UIF stats r=%d w=%d", enc.Reads, enc.Writes)
	}
}

func TestEncryptionManyBlocksAndSizes(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	setupEncryption(t, h, vc)
	h.run(t, func(p *sim.Proc) {
		for i, size := range []int{512, 1024, 4096, 16384, 131072} {
			lba := uint64(i * 1000)
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(j ^ i)
			}
			if st := doIO(p, v, disk, vm.OpWrite, lba, data); !st.OK() {
				t.Fatalf("write %d: %v", size, st)
			}
			got := make([]byte, size)
			if st := doIO(p, v, disk, vm.OpRead, lba, got); !st.OK() {
				t.Fatalf("read %d: %v", size, st)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch at size %d", size)
			}
		}
	})
}

func TestSGXEncryptionEndToEnd(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()
	prog, _ := storfn.EncryptorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	enclave, err := sgx.Launch(h.env, h.cpu, testKey, sgx.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	enc := storfn.NewSGXEncryptor(enclave, storfn.DefaultEncryptorCosts())
	bdev := blockdev.NewNVMeBlockDev(h.env, part, h.cpu, 11, blockdev.DefaultCosts())
	ring := blockdev.NewURing(h.env, bdev, blockdev.DefaultURingCosts())
	h.fw.Attach(vc.AttachUIF(256), enc, ring)

	plain := bytes.Repeat([]byte{0xbe, 0xef}, 2048)
	h.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 50, plain); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// SGX and plain UIFs produce identical ciphertext (same XTS format).
		raw := make([]byte, len(plain))
		h.store.ReadBlocks(50, raw)
		want := make([]byte, len(plain))
		xts.Must(testKey).EncryptBlocks(want, plain, 50, 512)
		if !bytes.Equal(raw, want) {
			t.Fatal("SGX ciphertext differs from plain XTS")
		}
		got := make([]byte, len(plain))
		if st := doIO(p, v, disk, vm.OpRead, 50, got); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(got, plain) {
			t.Fatal("SGX round trip mismatch")
		}
	})
	if enclave.Switchless == 0 {
		t.Fatal("enclave never used switchless calls")
	}
	if enclave.ECalls != 0 {
		t.Fatal("data path should not pay ECALL costs")
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	part := vc.Partition()
	prog, _ := storfn.ReplicatorClassifier(part)
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	// Remote host with the secondary drive.
	remoteCPU := sim.NewCPU(h.env, 4)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rstore := device.NewMemStore(512)
	rdev := device.New(h.env, rp, rstore)
	rbdev := blockdev.NewNVMeBlockDev(h.env, device.WholeNamespace(rdev, 1), remoteCPU, 3, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(h.env)
	tgt := nvmeof.NewTarget(h.env, rbdev, remoteCPU)
	initiator := nvmeof.NewInitiator(h.env, link, tgt)

	rep := storfn.NewReplicator()
	ring := blockdev.NewURing(h.env, initiator, blockdev.DefaultURingCosts())
	h.fw.Attach(vc.AttachUIF(256), rep, ring)

	data := bytes.Repeat([]byte{0x3c}, 4096)
	h.run(t, func(p *sim.Proc) {
		if st := doIO(p, v, disk, vm.OpWrite, 200, data); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		got := make([]byte, len(data))
		h.store.ReadBlocks(200, got)
		if !bytes.Equal(got, data) {
			t.Fatal("primary missing data")
		}
		rstore.ReadBlocks(200, got)
		if !bytes.Equal(got, data) {
			t.Fatal("secondary missing data: replication failed")
		}
		// Reads are local: remote target sees no more traffic.
		served := tgt.Served
		if st := doIO(p, v, disk, vm.OpRead, 200, got); !st.OK() || !bytes.Equal(got, data) {
			t.Fatalf("read: %v", st)
		}
		if tgt.Served != served {
			t.Fatal("read crossed the fabric")
		}
	})
	if rep.Forwarded != 1 {
		t.Fatalf("forwarded %d", rep.Forwarded)
	}
}

func TestClassifierSourcesVerify(t *testing.T) {
	// Every shipped classifier must pass the router's verifier.
	env := sim.New(1)
	dev := device.New(env, device.Default970EvoPlus(), device.NullStore{})
	part := device.Partition{Dev: dev, NSID: 1, Start: 4096, Blocks: 8192}
	v := core.NewVerifier()
	progPart, _ := storfn.PartitionClassifier(part)
	progEnc, _ := storfn.EncryptorClassifier(part)
	progRep, _ := storfn.ReplicatorClassifier(part)
	for name, prog := range map[string]*ebpf.Program{
		"partition": progPart, "encryptor": progEnc, "replicator": progRep,
	} {
		if err := v.Verify(prog); err != nil {
			t.Errorf("%s classifier rejected: %v", name, err)
		}
	}
	if len(storfn.ClassifierSources()) < 4 {
		t.Error("classifier source inventory incomplete")
	}
}

func TestQoSClassifierThrottles(t *testing.T) {
	h := newHost()
	v, vc, disk := h.addVM(t, 0)
	prog, _, bucket := storfn.QoSClassifier(vc.Partition())
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	bucket.SetU64(0, 0, 10) // budget: 10 blocks
	h.run(t, func(p *sim.Proc) {
		buf := make([]byte, 512)
		okCnt, throttled := 0, 0
		for i := 0; i < 20; i++ {
			switch st := doIO(p, v, disk, vm.OpWrite, uint64(i), buf); st {
			case nvme.SCSuccess:
				okCnt++
			case nvme.SCNSNotReady:
				throttled++
			default:
				t.Fatalf("unexpected status %v", st)
			}
		}
		if okCnt != 10 || throttled != 10 {
			t.Fatalf("ok=%d throttled=%d, want 10/10", okCnt, throttled)
		}
		// Live refill from the control plane: budget restored, I/O flows.
		bucket.SetU64(0, 0, 1000)
		if st := doIO(p, v, disk, vm.OpWrite, 0, buf); !st.OK() {
			t.Fatalf("after refill: %v", st)
		}
	})
}
