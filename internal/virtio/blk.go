package virtio

import (
	"encoding/binary"
	"fmt"

	"nvmetro/internal/guestmem"
	"nvmetro/internal/nvme"
	"nvmetro/internal/scsi"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// virtio-blk request types.
const (
	BlkTIn      uint32 = 0 // read
	BlkTOut     uint32 = 1 // write
	BlkTFlush   uint32 = 4
	BlkTDiscard uint32 = 11
)

// Queue couples a vring with its index and owner, for backend wiring.
type Queue struct {
	Index int
	VMID  int
	Ring  *Vring
	Mem   *guestmem.Memory
}

// Transport is how the driver reaches its backend: notification (kick) and
// completion interrupt registration. Backends model their own costs —
// a QEMU kick is a vmexit on the vCPU, a vhost kick is an eventfd write,
// and a polled vhost-user backend suppresses kicks entirely.
type Transport interface {
	Kick(p *sim.Proc, vcpu *sim.Thread, q *Queue)
	SetIRQ(q *Queue, fn func())
}

// slot is preallocated per-request metadata space in guest memory.
type slot struct {
	hdrAddr    uint64 // header (out)
	statusAddr uint64 // status byte (in)
	req        *vm.Req
}

// queueState is the driver-side state of one virtqueue.
type queueState struct {
	q       *Queue
	vcpu    *sim.Thread
	slots   []slot
	free    []int
	byHead  map[uint16]int
	slotCnd *sim.Cond
	irqCnd  *sim.Cond
}

// driverBase is shared machinery between the blk and scsi drivers.
type driverBase struct {
	v      *vm.VM
	tr     Transport
	costs  vm.DriverCosts
	qs     map[*sim.Thread]*queueState
	order  []*queueState
	info   nvme.NamespaceInfo
	encode func(s *slot, r *vm.Req) []Buffer
	status func(st *queueState, s *slot) nvme.Status
}

func (d *driverBase) init(name string, v *vm.VM, tr Transport, queueSize uint16, depth int, costs vm.DriverCosts, vmid int) {
	d.v = v
	d.tr = tr
	d.costs = costs
	d.qs = make(map[*sim.Thread]*queueState)
	for i := 0; i < v.NumVCPUs(); i++ {
		vcpu := v.VCPU(i)
		st := &queueState{
			q:       &Queue{Index: i, VMID: vmid, Ring: NewVring(v.Mem, queueSize), Mem: v.Mem},
			vcpu:    vcpu,
			byHead:  make(map[uint16]int),
			slotCnd: sim.NewCond(v.Env),
			irqCnd:  sim.NewCond(v.Env),
		}
		for j := 0; j < depth; j++ {
			page := v.Mem.MustAllocPages(1)
			st.slots = append(st.slots, slot{hdrAddr: page, statusAddr: page + 256})
			st.free = append(st.free, j)
		}
		tr.SetIRQ(st.q, func() { st.irqCnd.Signal(nil) })
		d.qs[vcpu] = st
		d.order = append(d.order, st)
		v.Env.Go(fmt.Sprintf("vm%d/%s-irq-q%d", v.ID, name, i), func(p *sim.Proc) { d.irqLoop(p, st) })
	}
}

// Queues exposes the virtqueues for backend attachment.
func (d *driverBase) Queues() []*Queue {
	out := make([]*Queue, len(d.order))
	for i, st := range d.order {
		out[i] = st.q
	}
	return out
}

// BlockSize implements vm.Disk.
func (d *driverBase) BlockSize() uint32 { return d.info.BlockSize() }

// Blocks implements vm.Disk.
func (d *driverBase) Blocks() uint64 { return d.info.Size }

// Submit implements vm.Disk.
func (d *driverBase) Submit(p *sim.Proc, vcpu *sim.Thread, r *vm.Req) {
	st := d.qs[vcpu]
	if st == nil {
		st = d.order[0]
	}
	r.Submitted = p.Now()
	vcpu.Exec(p, d.costs.Submit)
	for len(st.free) == 0 {
		st.slotCnd.Wait()
	}
	si := st.free[len(st.free)-1]
	st.free = st.free[:len(st.free)-1]
	s := &st.slots[si]
	s.req = r

	bufs := d.encode(s, r)
	head, ok := st.q.Ring.AddChain(bufs)
	for !ok {
		st.slotCnd.Wait()
		head, ok = st.q.Ring.AddChain(bufs)
	}
	st.byHead[head] = si
	if !st.q.Ring.SuppressKick {
		d.tr.Kick(p, vcpu, st.q)
	}
}

func (d *driverBase) irqLoop(p *sim.Proc, st *queueState) {
	for {
		st.irqCnd.Wait()
		st.vcpu.Exec(p, d.v.Costs.GuestIRQ)
		for {
			head, ok := st.q.Ring.PopUsed()
			if !ok {
				break
			}
			st.vcpu.Exec(p, d.costs.Complete)
			si, ok := st.byHead[head]
			if !ok {
				panic("virtio: used element for unknown head")
			}
			delete(st.byHead, head)
			s := &st.slots[si]
			r := s.req
			s.req = nil
			status := d.status(st, s)
			st.free = append(st.free, si)
			st.slotCnd.Signal(nil)
			r.Complete(d.v.Env, status)
		}
	}
}

func readByte(mem *guestmem.Memory, addr uint64) byte {
	var b [1]byte
	mem.ReadAt(b[:], addr)
	return b[0]
}

// --- virtio-blk driver ----------------------------------------------------

// BlkDisk is the guest virtio-blk driver (one virtqueue per vCPU).
type BlkDisk struct {
	driverBase
}

// NewBlkDisk creates the driver over tr for a disk of the given geometry.
func NewBlkDisk(v *vm.VM, tr Transport, info nvme.NamespaceInfo, queueSize uint16, costs vm.DriverCosts) *BlkDisk {
	d := &BlkDisk{}
	d.info = info
	d.encode = d.encodeReq
	d.status = d.readStatus
	d.init("vblk", v, tr, queueSize, int(queueSize)/2, costs, v.ID)
	return d
}

func (d *BlkDisk) encodeReq(s *slot, r *vm.Req) []Buffer {
	var hdr [16]byte
	t := BlkTIn
	switch r.Op {
	case vm.OpWrite:
		t = BlkTOut
	case vm.OpFlush:
		t = BlkTFlush
	case vm.OpTrim:
		t = BlkTDiscard
	}
	binary.LittleEndian.PutUint32(hdr[0:4], t)
	sector := r.LBA * uint64(d.info.BlockSize()) / 512
	binary.LittleEndian.PutUint64(hdr[8:16], sector)
	d.v.Mem.WriteAt(hdr[:], s.hdrAddr)

	bufs := []Buffer{{Addr: s.hdrAddr, Len: 16}}
	switch r.Op {
	case vm.OpRead, vm.OpWrite:
		nbytes := r.Bytes(d.info.BlockSize())
		rem := nbytes
		for _, pg := range r.BufPages {
			l := uint32(guestmem.PageSize)
			if rem < l {
				l = rem
			}
			bufs = append(bufs, Buffer{Addr: pg, Len: l, DevWrit: r.Op == vm.OpRead})
			rem -= l
			if rem == 0 {
				break
			}
		}
	case vm.OpTrim:
		// Discard segment {sector u64, num u32, flags u32} after the header.
		var seg [16]byte
		binary.LittleEndian.PutUint64(seg[0:8], sector)
		binary.LittleEndian.PutUint32(seg[8:12], r.Blocks*d.info.BlockSize()/512)
		d.v.Mem.WriteAt(seg[:], s.hdrAddr+16)
		bufs = append(bufs, Buffer{Addr: s.hdrAddr + 16, Len: 16})
	}
	return append(bufs, Buffer{Addr: s.statusAddr, Len: 1, DevWrit: true})
}

func (d *BlkDisk) readStatus(st *queueState, s *slot) nvme.Status {
	if readByte(d.v.Mem, s.statusAddr) == 0 {
		return nvme.SCSuccess
	}
	return nvme.SCInternal
}

// --- virtio-scsi driver ---------------------------------------------------

// scsiHdrSize is the simplified virtio-scsi request header: LUN+tag+attrs
// plus a 32-byte CDB area.
const scsiHdrSize = 64

// SCSIDisk is the guest virtio-scsi driver.
type SCSIDisk struct {
	driverBase
}

// NewSCSIDisk creates the driver.
func NewSCSIDisk(v *vm.VM, tr Transport, info nvme.NamespaceInfo, queueSize uint16, costs vm.DriverCosts) *SCSIDisk {
	d := &SCSIDisk{}
	d.info = info
	d.encode = d.encodeReq
	d.status = d.readStatus
	// CDB construction adds a little work per request versus virtio-blk.
	costs.Submit += 300 * sim.Nanosecond
	d.init("vscsi", v, tr, queueSize, int(queueSize)/2, costs, v.ID)
	return d
}

func (d *SCSIDisk) encodeReq(s *slot, r *vm.Req) []Buffer {
	var cdb scsi.CDB
	lba := r.LBA * uint64(d.info.BlockSize()) / 512
	blocks := r.Blocks * d.info.BlockSize() / 512
	switch r.Op {
	case vm.OpRead:
		cdb = scsi.Read16(lba, blocks)
	case vm.OpWrite:
		cdb = scsi.Write16(lba, blocks)
	case vm.OpFlush:
		cdb = scsi.SyncCache()
	case vm.OpTrim:
		cdb = scsi.Unmap(lba, blocks)
	}
	var hdr [scsiHdrSize]byte
	copy(hdr[32:], cdb)
	hdr[30] = uint8(len(cdb))
	d.v.Mem.WriteAt(hdr[:], s.hdrAddr)

	bufs := []Buffer{{Addr: s.hdrAddr, Len: scsiHdrSize}}
	if r.Op == vm.OpRead || r.Op == vm.OpWrite {
		nbytes := r.Bytes(d.info.BlockSize())
		rem := nbytes
		for _, pg := range r.BufPages {
			l := uint32(guestmem.PageSize)
			if rem < l {
				l = rem
			}
			bufs = append(bufs, Buffer{Addr: pg, Len: l, DevWrit: r.Op == vm.OpRead})
			rem -= l
			if rem == 0 {
				break
			}
		}
	}
	return append(bufs, Buffer{Addr: s.statusAddr, Len: 1, DevWrit: true})
}

func (d *SCSIDisk) readStatus(st *queueState, s *slot) nvme.Status {
	if readByte(d.v.Mem, s.statusAddr) == scsi.StatusGood {
		return nvme.SCSuccess
	}
	return nvme.SCInternal
}

// ParseSCSICDB extracts the CDB from a request header (backend side).
func ParseSCSICDB(mem *guestmem.Memory, hdrAddr uint64) (scsi.Cmd, error) {
	var hdr [scsiHdrSize]byte
	mem.ReadAt(hdr[:], hdrAddr)
	n := int(hdr[30])
	if n == 0 || n > 32 {
		return scsi.Cmd{}, scsi.ErrBadCDB
	}
	return scsi.Decode(scsi.CDB(hdr[32 : 32+n]))
}
