package virtio

import (
	"bytes"
	"testing"
	"testing/quick"

	"nvmetro/internal/guestmem"
)

func newRing(size uint16) (*Vring, *guestmem.Memory) {
	mem := guestmem.New(8 << 20)
	return NewVring(mem, size), mem
}

func TestVringAddPopChain(t *testing.T) {
	v, mem := newRing(16)
	dataAddr := mem.MustAllocPages(1)
	mem.WriteAt([]byte("hello"), dataAddr)
	head, ok := v.AddChain([]Buffer{
		{Addr: 0x100, Len: 16},
		{Addr: dataAddr, Len: 5},
		{Addr: 0x200, Len: 1, DevWrit: true},
	})
	if !ok {
		t.Fatal("add failed")
	}
	if !v.AvailPending() || v.AvailCount() != 1 {
		t.Fatal("avail not visible")
	}
	got, ok := v.PopAvail()
	if !ok || got != head {
		t.Fatalf("pop %d want %d", got, head)
	}
	chain, err := v.ReadChain(head)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[1].Len != 5 || chain[2].Flags&DescWrite == 0 {
		t.Fatalf("chain %+v", chain)
	}
	buf := make([]byte, 5)
	mem.ReadAt(buf, chain[1].Addr)
	if string(buf) != "hello" {
		t.Fatal("data addr wrong")
	}
}

func TestVringUsedRoundTripAndFreeList(t *testing.T) {
	v, _ := newRing(8)
	for round := 0; round < 40; round++ { // force many wraps
		head, ok := v.AddChain([]Buffer{{Addr: 0x1000, Len: 16}, {Addr: 0x2000, Len: 1, DevWrit: true}})
		if !ok {
			t.Fatalf("round %d: ring exhausted (free list leak)", round)
		}
		got, ok := v.PopAvail()
		if !ok || got != head {
			t.Fatalf("round %d: pop avail", round)
		}
		v.PushUsed(head, 1)
		uh, ok := v.PopUsed()
		if !ok || uh != head {
			t.Fatalf("round %d: pop used", round)
		}
		if v.NumFree() != 8 {
			t.Fatalf("round %d: free %d, want 8", round, v.NumFree())
		}
	}
}

func TestVringExhaustion(t *testing.T) {
	v, _ := newRing(4)
	if _, ok := v.AddChain([]Buffer{{Addr: 1, Len: 1}, {Addr: 2, Len: 1}, {Addr: 3, Len: 1}, {Addr: 4, Len: 1}, {Addr: 5, Len: 1}}); ok {
		t.Fatal("oversized chain accepted")
	}
	for i := 0; i < 2; i++ {
		if _, ok := v.AddChain([]Buffer{{Addr: 1, Len: 1}, {Addr: 2, Len: 1}}); !ok {
			t.Fatal("add failed")
		}
	}
	if _, ok := v.AddChain([]Buffer{{Addr: 1, Len: 1}}); ok {
		t.Fatal("add to full ring accepted")
	}
}

func TestVringMultipleOutstanding(t *testing.T) {
	v, _ := newRing(32)
	var heads []uint16
	for i := 0; i < 10; i++ {
		h, ok := v.AddChain([]Buffer{{Addr: uint64(i) * 0x1000, Len: 64}})
		if !ok {
			t.Fatal("add")
		}
		heads = append(heads, h)
	}
	// Device consumes in order.
	for i := 0; i < 10; i++ {
		h, ok := v.PopAvail()
		if !ok || h != heads[i] {
			t.Fatalf("pop %d", i)
		}
	}
	// Completes out of order.
	for _, i := range []int{3, 0, 9, 5, 1, 2, 4, 6, 7, 8} {
		v.PushUsed(heads[i], 0)
	}
	seen := map[uint16]bool{}
	for i := 0; i < 10; i++ {
		h, ok := v.PopUsed()
		if !ok {
			t.Fatal("pop used")
		}
		seen[h] = true
	}
	if len(seen) != 10 {
		t.Fatalf("saw %d distinct heads", len(seen))
	}
}

// Property: any sequence of add/complete cycles preserves descriptor count.
func TestVringDescriptorConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		v, _ := newRing(16)
		outstanding := []uint16{}
		for _, op := range ops {
			if op%2 == 0 && v.NumFree() >= 2 {
				h, ok := v.AddChain([]Buffer{{Addr: 0x1000, Len: 8}, {Addr: 0x2000, Len: 8, DevWrit: true}})
				if !ok {
					return false
				}
				if got, ok := v.PopAvail(); !ok || got != h {
					return false
				}
				outstanding = append(outstanding, h)
			} else if len(outstanding) > 0 {
				h := outstanding[0]
				outstanding = outstanding[1:]
				v.PushUsed(h, 8)
				if got, ok := v.PopUsed(); !ok || got != h {
					return false
				}
			}
		}
		return v.NumFree() == 16-2*len(outstanding)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseChainAndData(t *testing.T) {
	mem := guestmem.New(8 << 20)
	ring := NewVring(mem, 16)
	q := &Queue{Index: 0, VMID: 7, Ring: ring, Mem: mem}
	hdr := mem.MustAllocPages(1)
	data := mem.MustAllocPages(1)
	status := hdr + 512
	payload := bytes.Repeat([]byte{0xab}, 600)
	mem.WriteAt(payload, data)
	head, _ := ring.AddChain([]Buffer{
		{Addr: hdr, Len: 16},
		{Addr: data, Len: 600},
		{Addr: status, Len: 1, DevWrit: true},
	})
	ring.PopAvail()
	r, err := ParseChain(q, head)
	if err != nil {
		t.Fatal(err)
	}
	if r.HdrAddr != hdr || r.StatusAddr != status || r.DataLen() != 600 {
		t.Fatalf("parse %+v", r)
	}
	buf := make([]byte, 600)
	r.ReadData(q, buf)
	if !bytes.Equal(buf, payload) {
		t.Fatal("ReadData")
	}
	// WriteData writes back.
	resp := bytes.Repeat([]byte{0x11}, 600)
	r.WriteData(q, resp)
	mem.ReadAt(buf, data)
	if !bytes.Equal(buf, resp) {
		t.Fatal("WriteData")
	}
	// Complete sets status and pushes used.
	r.Complete(q, 0x55)
	var st [1]byte
	mem.ReadAt(st[:], status)
	if st[0] != 0x55 {
		t.Fatal("status byte")
	}
	if h, ok := ring.PopUsed(); !ok || h != head {
		t.Fatal("used")
	}
}
