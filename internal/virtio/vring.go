// Package virtio implements the split virtqueue (vring) and the virtio-blk
// and virtio-scsi guest drivers used by the QEMU, vhost-scsi and SPDK
// vhost-user baselines. The rings live in guest memory and are accessed on
// both sides through DMA reads/writes, exactly like the real transport:
// descriptor table, available ring and used ring, with kick suppression for
// polling backends.
package virtio

import (
	"encoding/binary"
	"fmt"

	"nvmetro/internal/guestmem"
)

// Descriptor flags.
const (
	DescNext  uint16 = 1 // chain continues in .Next
	DescWrite uint16 = 2 // device writes this buffer (device->driver)
)

// Desc is one descriptor table entry.
type Desc struct {
	Addr  uint64
	Len   uint32
	Flags uint16
	Next  uint16
}

const descSize = 16

// Vring is a split virtqueue. Driver-side state (free list, last-seen used
// index) and device-side state (last-seen avail index) are both kept here
// for convenience; the ring contents themselves live in guest memory.
type Vring struct {
	mem  *guestmem.Memory
	size uint16

	descAddr  uint64
	availAddr uint64
	usedAddr  uint64

	// Driver side.
	free     []uint16
	availIdx uint16
	lastUsed uint16

	// Device side.
	lastAvail uint16
	usedIdx   uint16

	// SuppressKick mirrors VRING_USED_F_NO_NOTIFY: a polling backend sets
	// it so the driver skips the (expensive) notification.
	SuppressKick bool
}

// NewVring allocates a virtqueue of the given size in guest memory.
func NewVring(mem *guestmem.Memory, size uint16) *Vring {
	descBytes := int(size) * descSize
	availBytes := 4 + 2*int(size)
	usedBytes := 4 + 8*int(size)
	total := descBytes + availBytes + usedBytes
	pages := (total + guestmem.PageSize - 1) / guestmem.PageSize
	base := mem.MustAllocPages(pages)
	v := &Vring{
		mem: mem, size: size,
		descAddr:  base,
		availAddr: base + uint64(descBytes),
		usedAddr:  base + uint64(descBytes+availBytes),
	}
	for i := uint16(0); i < size; i++ {
		v.free = append(v.free, i)
	}
	return v
}

// Size returns the ring size.
func (v *Vring) Size() uint16 { return v.size }

// NumFree returns available descriptors on the driver side.
func (v *Vring) NumFree() int { return len(v.free) }

func (v *Vring) readU16(addr uint64) uint16 {
	var b [2]byte
	v.mem.ReadAt(b[:], addr)
	return binary.LittleEndian.Uint16(b[:])
}

func (v *Vring) writeU16(addr uint64, x uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], x)
	v.mem.WriteAt(b[:], addr)
}

func (v *Vring) writeDesc(i uint16, d Desc) {
	var b [descSize]byte
	binary.LittleEndian.PutUint64(b[0:8], d.Addr)
	binary.LittleEndian.PutUint32(b[8:12], d.Len)
	binary.LittleEndian.PutUint16(b[12:14], d.Flags)
	binary.LittleEndian.PutUint16(b[14:16], d.Next)
	v.mem.WriteAt(b[:], v.descAddr+uint64(i)*descSize)
}

func (v *Vring) readDesc(i uint16) Desc {
	var b [descSize]byte
	v.mem.ReadAt(b[:], v.descAddr+uint64(i)*descSize)
	return Desc{
		Addr:  binary.LittleEndian.Uint64(b[0:8]),
		Len:   binary.LittleEndian.Uint32(b[8:12]),
		Flags: binary.LittleEndian.Uint16(b[12:14]),
		Next:  binary.LittleEndian.Uint16(b[14:16]),
	}
}

// Buffer is one segment of a descriptor chain.
type Buffer struct {
	Addr    uint64
	Len     uint32
	DevWrit bool // device-writable (driver reads the result)
}

// AddChain publishes a descriptor chain, returning the head descriptor
// index, or ok=false if the ring lacks descriptors.
func (v *Vring) AddChain(bufs []Buffer) (uint16, bool) {
	if len(bufs) == 0 || len(v.free) < len(bufs) {
		return 0, false
	}
	idxs := make([]uint16, len(bufs))
	for i := range bufs {
		idxs[i] = v.free[len(v.free)-1-i]
	}
	v.free = v.free[:len(v.free)-len(bufs)]
	for i, b := range bufs {
		d := Desc{Addr: b.Addr, Len: b.Len}
		if b.DevWrit {
			d.Flags |= DescWrite
		}
		if i < len(bufs)-1 {
			d.Flags |= DescNext
			d.Next = idxs[i+1]
		}
		v.writeDesc(idxs[i], d)
	}
	// Publish in the avail ring.
	slot := v.availAddr + 4 + uint64(v.availIdx%v.size)*2
	v.writeU16(slot, idxs[0])
	v.availIdx++
	v.writeU16(v.availAddr+2, v.availIdx)
	return idxs[0], true
}

// PopAvail consumes the next available chain head (device side).
func (v *Vring) PopAvail() (uint16, bool) {
	avail := v.readU16(v.availAddr + 2)
	if v.lastAvail == avail {
		return 0, false
	}
	slot := v.availAddr + 4 + uint64(v.lastAvail%v.size)*2
	head := v.readU16(slot)
	v.lastAvail++
	return head, true
}

// AvailPending reports whether unconsumed chains exist (device side poll).
func (v *Vring) AvailPending() bool {
	return v.readU16(v.availAddr+2) != v.lastAvail
}

// AvailCount returns the number of unconsumed available chains.
func (v *Vring) AvailCount() uint16 {
	return v.readU16(v.availAddr+2) - v.lastAvail
}

// ReadChain walks the descriptor chain from head (device side).
func (v *Vring) ReadChain(head uint16) ([]Desc, error) {
	var out []Desc
	i := head
	for n := 0; ; n++ {
		if n > int(v.size) {
			return nil, fmt.Errorf("virtio: descriptor loop at %d", head)
		}
		d := v.readDesc(i)
		out = append(out, d)
		if d.Flags&DescNext == 0 {
			return out, nil
		}
		i = d.Next
	}
}

// PushUsed returns a chain to the driver with the written length
// (device side).
func (v *Vring) PushUsed(head uint16, length uint32) {
	slot := v.usedAddr + 4 + uint64(v.usedIdx%v.size)*8
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(head))
	binary.LittleEndian.PutUint32(b[4:8], length)
	v.mem.WriteAt(b[:], slot)
	v.usedIdx++
	v.writeU16(v.usedAddr+2, v.usedIdx)
}

// PopUsed consumes one used element (driver side), freeing its chain.
func (v *Vring) PopUsed() (uint16, bool) {
	used := v.readU16(v.usedAddr + 2)
	if v.lastUsed == used {
		return 0, false
	}
	slot := v.usedAddr + 4 + uint64(v.lastUsed%v.size)*8
	var b [8]byte
	v.mem.ReadAt(b[:], slot)
	head := uint16(binary.LittleEndian.Uint32(b[0:4]))
	v.lastUsed++
	// Return the chain's descriptors to the free list.
	chain, err := v.ReadChain(head)
	if err == nil {
		i := head
		for range chain {
			d := v.readDesc(i)
			v.free = append(v.free, i)
			i = d.Next
		}
	}
	return head, true
}
