package virtio

import (
	"encoding/binary"
	"fmt"
)

// DeviceReq is a parsed request chain as seen by a backend: header
// descriptor, data descriptors and the trailing status byte.
type DeviceReq struct {
	Head       uint16
	HdrAddr    uint64
	HdrLen     uint32
	Data       []Desc
	StatusAddr uint64
}

// ParseChain walks a chain popped from the avail ring into its parts.
func ParseChain(q *Queue, head uint16) (DeviceReq, error) {
	chain, err := q.Ring.ReadChain(head)
	if err != nil {
		return DeviceReq{}, err
	}
	if len(chain) < 2 {
		return DeviceReq{}, fmt.Errorf("virtio: chain too short (%d)", len(chain))
	}
	r := DeviceReq{
		Head:       head,
		HdrAddr:    chain[0].Addr,
		HdrLen:     chain[0].Len,
		StatusAddr: chain[len(chain)-1].Addr,
	}
	r.Data = chain[1 : len(chain)-1]
	return r, nil
}

// BlkHeader decodes the virtio-blk header (type + sector).
func (r *DeviceReq) BlkHeader(q *Queue) (reqType uint32, sector uint64) {
	var hdr [16]byte
	q.Mem.ReadAt(hdr[:], r.HdrAddr)
	return binary.LittleEndian.Uint32(hdr[0:4]), binary.LittleEndian.Uint64(hdr[8:16])
}

// DiscardSegment decodes a virtio-blk discard segment.
func (r *DeviceReq) DiscardSegment(q *Queue) (sector uint64, nsect uint32) {
	if len(r.Data) == 0 {
		return 0, 0
	}
	var seg [16]byte
	q.Mem.ReadAt(seg[:], r.Data[0].Addr)
	return binary.LittleEndian.Uint64(seg[0:8]), binary.LittleEndian.Uint32(seg[8:12])
}

// DataLen sums the data descriptors.
func (r *DeviceReq) DataLen() int {
	n := 0
	for _, d := range r.Data {
		n += int(d.Len)
	}
	return n
}

// ReadData copies the request's data out of guest memory.
func (r *DeviceReq) ReadData(q *Queue, buf []byte) {
	off := 0
	for _, d := range r.Data {
		q.Mem.ReadAt(buf[off:off+int(d.Len)], d.Addr)
		off += int(d.Len)
	}
}

// WriteData copies buf into the request's (device-writable) data pages.
func (r *DeviceReq) WriteData(q *Queue, buf []byte) {
	off := 0
	for _, d := range r.Data {
		q.Mem.WriteAt(buf[off:off+int(d.Len)], d.Addr)
		off += int(d.Len)
	}
}

// Complete writes the status byte and returns the chain via the used ring.
// The caller is responsible for the completion notification (IRQ).
func (r *DeviceReq) Complete(q *Queue, status byte) {
	q.Mem.WriteAt([]byte{status}, r.StatusAddr)
	q.Ring.PushUsed(r.Head, uint32(r.DataLen())+1)
}
