package xts

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// IEEE P1619 test vector 1 (AES-128-XTS, all-zero keys and data).
func TestIEEEVector1(t *testing.T) {
	c := Must(make([]byte, 32))
	src := make([]byte, 32)
	dst := make([]byte, 32)
	if err := c.EncryptSector(dst, src, 0); err != nil {
		t.Fatal(err)
	}
	want := mustHex(t, "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e")
	if !bytes.Equal(dst, want) {
		t.Fatalf("got %x want %x", dst, want)
	}
}

// IEEE P1619 test vector 4 (sequential plaintext, sector 0).
func TestIEEEVector4(t *testing.T) {
	key := mustHex(t, "2718281828459045235360287471352631415926535897932384626433832795")
	c := Must(key)
	src := make([]byte, 512)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 512)
	if err := c.EncryptSector(dst, src, 0); err != nil {
		t.Fatal(err)
	}
	wantPrefix := mustHex(t, "27a7479befa1d476489f308cd4cfa6e2a96e4bbe3208ff25287dd3819616e89c")
	if !bytes.Equal(dst[:32], wantPrefix) {
		t.Fatalf("got %x want %x", dst[:32], wantPrefix)
	}
	got := make([]byte, 512)
	if err := c.DecryptSector(got, dst, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("decrypt mismatch")
	}
}

// IEEE P1619 test vector 15 (ciphertext stealing, 17 bytes).
func TestIEEEVectorCTS(t *testing.T) {
	key := mustHex(t, "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0bfbebdbcbbbab9b8b7b6b5b4b3b2b1b0")
	c := Must(key)
	src := mustHex(t, "000102030405060708090a0b0c0d0e0f10")
	dst := make([]byte, len(src))
	if err := c.EncryptSector(dst, src, 0x123456789a); err != nil {
		t.Fatal(err)
	}
	want := mustHex(t, "6c1625db4671522d3d7599601de7ca09ed")
	if !bytes.Equal(dst, want) {
		t.Fatalf("got %x want %x", dst, want)
	}
	back := make([]byte, len(src))
	if err := c.DecryptSector(back, dst, 0x123456789a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("CTS decrypt mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	key := make([]byte, 64)
	for i := range key {
		key[i] = byte(i * 7)
	}
	c := Must(key)
	f := func(data []byte, sector uint64) bool {
		if len(data) < 16 {
			data = append(data, make([]byte, 16-len(data))...)
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		enc := make([]byte, len(data))
		if err := c.EncryptSector(enc, data, sector); err != nil {
			return false
		}
		dec := make([]byte, len(data))
		if err := c.DecryptSector(dec, enc, sector); err != nil {
			return false
		}
		return bytes.Equal(dec, data) && !bytes.Equal(enc, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSectorTweakMatters(t *testing.T) {
	c := Must(make([]byte, 64))
	src := bytes.Repeat([]byte{0xab}, 512)
	e1 := make([]byte, 512)
	e2 := make([]byte, 512)
	c.EncryptSector(e1, src, 1)
	c.EncryptSector(e2, src, 2)
	if bytes.Equal(e1, e2) {
		t.Fatal("different sectors must produce different ciphertext")
	}
	// Decrypting with the wrong sector must not recover plaintext.
	d := make([]byte, 512)
	c.DecryptSector(d, e1, 2)
	if bytes.Equal(d, src) {
		t.Fatal("wrong-sector decrypt recovered plaintext")
	}
}

func TestBulkBlocksMatchesPerSector(t *testing.T) {
	key := bytes.Repeat([]byte{3}, 32)
	c := Must(key)
	src := make([]byte, 4*512)
	for i := range src {
		src[i] = byte(i * 13)
	}
	bulk := make([]byte, len(src))
	if err := c.EncryptBlocks(bulk, src, 100, 512); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		one := make([]byte, 512)
		c.EncryptSector(one, src[i*512:(i+1)*512], uint64(100+i))
		if !bytes.Equal(one, bulk[i*512:(i+1)*512]) {
			t.Fatalf("sector %d differs between bulk and single", i)
		}
	}
	dec := make([]byte, len(src))
	if err := c.DecryptBlocks(dec, bulk, 100, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("bulk round trip")
	}
}

func TestInPlaceOperation(t *testing.T) {
	c := Must(make([]byte, 32))
	data := bytes.Repeat([]byte{0x42}, 512)
	orig := append([]byte{}, data...)
	c.EncryptSector(data, data, 7)
	if bytes.Equal(data, orig) {
		t.Fatal("in-place encrypt did nothing")
	}
	c.DecryptSector(data, data, 7)
	if !bytes.Equal(data, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New(make([]byte, 33)); err == nil {
		t.Fatal("bad key size accepted")
	}
	c := Must(make([]byte, 32))
	if err := c.EncryptSector(make([]byte, 8), make([]byte, 8), 0); err == nil {
		t.Fatal("sub-block data accepted")
	}
	if err := c.EncryptSector(make([]byte, 32), make([]byte, 16), 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := c.EncryptBlocks(make([]byte, 100), make([]byte, 100), 0, 512); err == nil {
		t.Fatal("non-multiple bulk accepted")
	}
}

func BenchmarkEncrypt4K(b *testing.B) {
	c := Must(make([]byte, 64))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		c.EncryptBlocks(buf, buf, uint64(i), 512)
	}
}
