// Package xts implements the XTS-AES tweakable block cipher mode
// (IEEE P1619), the mode used by dm-crypt and by the paper's encryption
// UIFs. The Go standard library provides AES but not XTS, so the XEX
// construction with ciphertext stealing is implemented here.
//
// Compatibility: with the same 512-bit key and sector numbering, output
// matches dm-crypt's aes-xts-plain64 format.
package xts

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// blockSize is the AES block size.
const blockSize = 16

// Cipher is an XTS-AES cipher for a fixed key pair.
type Cipher struct {
	k1, k2 cipher.Block
}

// New creates an XTS cipher from a 32- or 64-byte key (AES-128 or AES-256
// data key followed by an equal-size tweak key).
func New(key []byte) (*Cipher, error) {
	if len(key) != 32 && len(key) != 64 {
		return nil, errors.New("xts: key must be 32 or 64 bytes (two AES keys)")
	}
	half := len(key) / 2
	k1, err := aes.NewCipher(key[:half])
	if err != nil {
		return nil, fmt.Errorf("xts: %w", err)
	}
	k2, err := aes.NewCipher(key[half:])
	if err != nil {
		return nil, fmt.Errorf("xts: %w", err)
	}
	return &Cipher{k1: k1, k2: k2}, nil
}

// Must creates an XTS cipher, panicking on bad key sizes (static keys).
func Must(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

// tweakFor computes the initial tweak block for a sector: the sector number
// encoded little-endian ("plain64") and encrypted with the tweak key.
func (c *Cipher) tweakFor(sector uint64) [blockSize]byte {
	var t [blockSize]byte
	binary.LittleEndian.PutUint64(t[:8], sector)
	c.k2.Encrypt(t[:], t[:])
	return t
}

// mulAlpha multiplies the tweak by the primitive element alpha in GF(2^128)
// (a left shift with conditional reduction by the low polynomial 0x87).
func mulAlpha(t *[blockSize]byte) {
	carry := byte(0)
	for i := 0; i < blockSize; i++ {
		next := t[i] >> 7
		t[i] = t[i]<<1 | carry
		carry = next
	}
	if carry != 0 {
		t[0] ^= 0x87
	}
}

func xorBlock(dst, a, b []byte) {
	for i := 0; i < blockSize; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// EncryptSector encrypts plaintext into dst (may alias) using the sector
// number as the tweak. Data shorter than one AES block is rejected;
// non-multiples of 16 use ciphertext stealing.
func (c *Cipher) EncryptSector(dst, src []byte, sector uint64) error {
	return c.process(dst, src, sector, true)
}

// DecryptSector is the inverse of EncryptSector.
func (c *Cipher) DecryptSector(dst, src []byte, sector uint64) error {
	return c.process(dst, src, sector, false)
}

func (c *Cipher) process(dst, src []byte, sector uint64, enc bool) error {
	if len(dst) != len(src) {
		return errors.New("xts: dst/src length mismatch")
	}
	if len(src) < blockSize {
		return errors.New("xts: data shorter than one AES block")
	}
	t := c.tweakFor(sector)
	full := len(src) / blockSize
	rem := len(src) % blockSize

	cryptOne := func(dst, src []byte, tw *[blockSize]byte) {
		var tmp [blockSize]byte
		xorBlock(tmp[:], src, tw[:])
		if enc {
			c.k1.Encrypt(tmp[:], tmp[:])
		} else {
			c.k1.Decrypt(tmp[:], tmp[:])
		}
		xorBlock(dst, tmp[:], tw[:])
	}

	if rem == 0 {
		for i := 0; i < full; i++ {
			cryptOne(dst[i*blockSize:], src[i*blockSize:], &t)
			mulAlpha(&t)
		}
		return nil
	}

	// Ciphertext stealing over the final partial block.
	for i := 0; i < full-1; i++ {
		cryptOne(dst[i*blockSize:], src[i*blockSize:], &t)
		mulAlpha(&t)
	}
	last := (full - 1) * blockSize
	var t1, t2 [blockSize]byte
	t1 = t
	mulAlpha(&t)
	t2 = t
	if !enc {
		// Decryption processes the tweaks in swapped order.
		t1, t2 = t2, t1
	}
	var head, tail [blockSize]byte
	cryptOne(head[:], src[last:last+blockSize], &t1)
	copy(tail[:], head[:])
	copy(tail[:rem], src[last+blockSize:])
	cryptOne(dst[last:last+blockSize], tail[:], &t2)
	copy(dst[last+blockSize:], head[:rem])
	return nil
}

// EncryptBlocks encrypts a run of consecutive sectors of sectorSize bytes,
// the bulk operation UIFs and dm-crypt use.
func (c *Cipher) EncryptBlocks(dst, src []byte, firstSector uint64, sectorSize int) error {
	return c.bulk(dst, src, firstSector, sectorSize, true)
}

// DecryptBlocks is the inverse of EncryptBlocks.
func (c *Cipher) DecryptBlocks(dst, src []byte, firstSector uint64, sectorSize int) error {
	return c.bulk(dst, src, firstSector, sectorSize, false)
}

func (c *Cipher) bulk(dst, src []byte, firstSector uint64, sectorSize int, enc bool) error {
	if len(src)%sectorSize != 0 {
		return fmt.Errorf("xts: data length %d not a multiple of sector size %d", len(src), sectorSize)
	}
	for off, s := 0, firstSector; off < len(src); off, s = off+sectorSize, s+1 {
		var err error
		if enc {
			err = c.EncryptSector(dst[off:off+sectorSize], src[off:off+sectorSize], s)
		} else {
			err = c.DecryptSector(dst[off:off+sectorSize], src[off:off+sectorSize], s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
