package dm

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/xts"
)

// CryptParams configures dm-crypt.
type CryptParams struct {
	// Workers is the kcryptd pool size (Linux uses per-CPU workqueues).
	Workers int
	// CryptRate is the modeled AES-NI throughput per worker in bytes/sec.
	CryptRate float64
	// QueueCost is the workqueue dispatch overhead per bio.
	QueueCost sim.Duration
}

// DefaultCryptParams returns the calibrated dm-crypt model (AES-NI XTS at
// roughly 2.4 GB/s per core, plus workqueue handoff).
func DefaultCryptParams() CryptParams {
	return CryptParams{Workers: 2, CryptRate: 2.4e9, QueueCost: 1500 * sim.Nanosecond}
}

// Crypt is the dm-crypt target: transparent XTS-AES encryption above a
// lower device, with encryption and decryption performed by a kcryptd-style
// worker pool. Tweaks are plain64 sector numbers relative to the target, so
// output is compatible with the NVMetro encryption UIF given the same key.
type Crypt struct {
	env    *sim.Env
	lower  blockdev.BlockDevice
	cipher *xts.Cipher
	params CryptParams
	queue  []cryptWork
	wake   *sim.Cond

	// Stats
	Encrypted, Decrypted uint64 // bytes
}

type cryptWork struct {
	bio     *Bio
	decrypt bool
}

// NewCrypt creates the target; worker threads are created on cpu with the
// "kcryptd" tag.
func NewCrypt(env *sim.Env, lower blockdev.BlockDevice, key []byte, params CryptParams, cpu *sim.CPU) (*Crypt, error) {
	cipher, err := xts.New(key)
	if err != nil {
		return nil, err
	}
	c := &Crypt{env: env, lower: lower, cipher: cipher, params: params, wake: sim.NewCond(env)}
	for i := 0; i < params.Workers; i++ {
		th := cpu.NewThread("kcryptd")
		env.Go(fmt.Sprintf("kcryptd/%d", i), func(p *sim.Proc) { c.worker(p, th) })
	}
	return c, nil
}

// NumSectors implements BlockDevice.
func (c *Crypt) NumSectors() uint64 { return c.lower.NumSectors() }

// SubmitBio implements BlockDevice.
func (c *Crypt) SubmitBio(p *sim.Proc, th *sim.Thread, b *Bio) {
	switch b.Op {
	case blockdev.BioWrite:
		// Writes are encrypted by kcryptd before hitting the lower device.
		th.Exec(p, c.params.QueueCost)
		c.queue = append(c.queue, cryptWork{bio: b})
		c.wake.Signal(nil)
	case blockdev.BioRead:
		// Reads complete on the lower device first, then kcryptd decrypts.
		orig := b.OnDone
		nb := *b
		nb.OnDone = func(st nvme.Status) {
			if !st.OK() {
				orig(st)
				return
			}
			done := *b
			done.OnDone = orig
			c.queue = append(c.queue, cryptWork{bio: &done, decrypt: true})
			c.wake.Signal(nil)
		}
		c.lower.SubmitBio(p, th, &nb)
	default:
		c.lower.SubmitBio(p, th, b)
	}
}

func (c *Crypt) worker(p *sim.Proc, th *sim.Thread) {
	for {
		if len(c.queue) == 0 {
			c.wake.Wait()
			continue
		}
		w := c.queue[0]
		c.queue = c.queue[1:]
		cost := sim.Duration(float64(len(w.bio.Data)) / c.params.CryptRate * 1e9)
		th.Exec(p, cost)
		if w.decrypt {
			if err := c.cipher.DecryptBlocks(w.bio.Data, w.bio.Data, w.bio.Sector, blockdev.SectorSize); err != nil {
				w.bio.OnDone(nvme.SCInternal)
				continue
			}
			c.Decrypted += uint64(len(w.bio.Data))
			w.bio.OnDone(nvme.SCSuccess)
			continue
		}
		// Encrypt into a bounce buffer: the caller's plaintext must not be
		// clobbered (dm-crypt does the same).
		ct := make([]byte, len(w.bio.Data))
		if err := c.cipher.EncryptBlocks(ct, w.bio.Data, w.bio.Sector, blockdev.SectorSize); err != nil {
			w.bio.OnDone(nvme.SCInternal)
			continue
		}
		c.Encrypted += uint64(len(ct))
		lower := &Bio{Op: blockdev.BioWrite, Sector: w.bio.Sector, Data: ct, OnDone: w.bio.OnDone}
		c.lower.SubmitBio(p, th, lower)
	}
}
