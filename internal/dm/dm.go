// Package dm is the device-mapper layer: stackable block-device targets in
// the style of Linux DM. It provides dm-linear (offset remapping), dm-crypt
// (XTS-AES encryption with a kcryptd-style worker pool) and dm-mirror
// (synchronous two-leg replication), plus a Table for composing targets
// over sector ranges. These are the kernel building blocks behind the
// paper's dm-crypt+vhost-scsi and dm-mirror+vhost-scsi baselines.
package dm

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Linear remaps a sector range onto a lower device at an offset
// (dm-linear).
type Linear struct {
	Lower   blockdev.BlockDevice
	Offset  uint64 // sector offset on the lower device
	Sectors uint64
}

// NumSectors implements BlockDevice.
func (l *Linear) NumSectors() uint64 { return l.Sectors }

// SubmitBio implements BlockDevice.
func (l *Linear) SubmitBio(p *sim.Proc, th *sim.Thread, b *Bio) {
	if uint64(b.Sectors())+b.Sector > l.Sectors {
		b.OnDone(nvme.SCLBAOutOfRange)
		return
	}
	nb := *b
	nb.Sector += l.Offset
	l.Lower.SubmitBio(p, th, &nb)
}

// Bio is re-exported for brevity in this package.
type Bio = blockdev.Bio

// Table composes targets over consecutive sector ranges (a DM table).
// Bios must not span range boundaries (Linux splits them; callers here are
// expected to respect boundaries, which real filesystems do).
type Table struct {
	entries []tableEntry
}

type tableEntry struct {
	start, length uint64
	target        blockdev.BlockDevice
}

// Append adds a target covering the next length sectors.
func (t *Table) Append(length uint64, target blockdev.BlockDevice) *Table {
	start := t.NumSectors()
	t.entries = append(t.entries, tableEntry{start: start, length: length, target: target})
	return t
}

// NumSectors implements BlockDevice.
func (t *Table) NumSectors() uint64 {
	if len(t.entries) == 0 {
		return 0
	}
	last := t.entries[len(t.entries)-1]
	return last.start + last.length
}

// SubmitBio implements BlockDevice.
func (t *Table) SubmitBio(p *sim.Proc, th *sim.Thread, b *Bio) {
	for _, e := range t.entries {
		if b.Sector >= e.start && b.Sector < e.start+e.length {
			if b.Sector+uint64(b.Sectors()) > e.start+e.length {
				b.OnDone(nvme.SCLBAOutOfRange) // bio spans a boundary
				return
			}
			nb := *b
			nb.Sector -= e.start
			e.target.SubmitBio(p, th, &nb)
			return
		}
	}
	b.OnDone(nvme.SCLBAOutOfRange)
}

// String renders the table like `dmsetup table`.
func (t *Table) String() string {
	s := ""
	for _, e := range t.entries {
		s += fmt.Sprintf("%d %d %T\n", e.start, e.length, e.target)
	}
	return s
}
