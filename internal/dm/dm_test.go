package dm_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/dm"
	"nvmetro/internal/guestmem"
	"nvmetro/internal/nvme"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/xts"
)

func newGuestMem() *guestmem.Memory { return guestmem.New(16 << 20) }

type bench struct {
	env   *sim.Env
	cpu   *sim.CPU
	dev   *device.Device
	store *device.MemStore
	bdev  *blockdev.NVMeBlockDev
	th    *sim.Thread
}

func newBench() *bench {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 8)
	store := device.NewMemStore(512)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, store)
	return &bench{
		env: env, cpu: cpu, dev: dev, store: store,
		bdev: blockdev.NewNVMeBlockDev(env, device.WholeNamespace(dev, 1), cpu, 7, blockdev.DefaultCosts()),
		th:   cpu.ThreadOn(0, "test"),
	}
}

func (b *bench) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	b.env.Go("test", func(p *sim.Proc) { fn(p); ok = true; b.env.Stop() })
	b.env.RunUntil(sim.Time(60 * sim.Second))
	if !ok {
		t.Fatal("test did not finish")
	}
}

// bioWait submits a bio and waits for completion.
func bioWait(p *sim.Proc, th *sim.Thread, d blockdev.BlockDevice, b *blockdev.Bio) nvme.Status {
	cond := sim.NewCond(p.Env())
	var status nvme.Status
	done := false
	b.OnDone = func(st nvme.Status) { status = st; done = true; cond.Signal(nil) }
	d.SubmitBio(p, th, b)
	for !done {
		cond.Wait()
	}
	return status
}

func TestNVMeBlockDevRoundTrip(t *testing.T) {
	b := newBench()
	b.run(t, func(p *sim.Proc) {
		src := bytes.Repeat([]byte{0xcd}, 8192)
		if st := bioWait(p, b.th, b.bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 100, Data: append([]byte{}, src...)}); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		got := make([]byte, 8192)
		if st := bioWait(p, b.th, b.bdev, &blockdev.Bio{Op: blockdev.BioRead, Sector: 100, Data: got}); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(src, got) {
			t.Fatal("round trip mismatch")
		}
		if st := bioWait(p, b.th, b.bdev, &blockdev.Bio{Op: blockdev.BioFlush}); !st.OK() {
			t.Fatalf("flush: %v", st)
		}
	})
}

func TestLinearOffset(t *testing.T) {
	b := newBench()
	lin := &dm.Linear{Lower: b.bdev, Offset: 1000, Sectors: 5000}
	b.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0x11}, 512)
		if st := bioWait(p, b.th, lin, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 7, Data: data}); !st.OK() {
			t.Fatal(st)
		}
		got := make([]byte, 512)
		b.store.ReadBlocks(1007, got)
		if !bytes.Equal(data, got) {
			t.Fatal("linear did not remap")
		}
		if st := bioWait(p, b.th, lin, &blockdev.Bio{Op: blockdev.BioRead, Sector: 4999, Data: make([]byte, 1024)}); st != nvme.SCLBAOutOfRange {
			t.Fatalf("oob: %v", st)
		}
	})
}

func TestTableComposition(t *testing.T) {
	b := newBench()
	tab := &dm.Table{}
	tab.Append(1000, &dm.Linear{Lower: b.bdev, Offset: 0, Sectors: 1000})
	tab.Append(1000, &dm.Linear{Lower: b.bdev, Offset: 50000, Sectors: 1000})
	if tab.NumSectors() != 2000 {
		t.Fatal("table size")
	}
	b.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0x77}, 512)
		// Sector 1500 lands in the second range at lower offset 50500.
		if st := bioWait(p, b.th, tab, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 1500, Data: data}); !st.OK() {
			t.Fatal(st)
		}
		got := make([]byte, 512)
		b.store.ReadBlocks(50500, got)
		if !bytes.Equal(data, got) {
			t.Fatal("table did not route to second target")
		}
		// A bio spanning the boundary is rejected.
		if st := bioWait(p, b.th, tab, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 999, Data: make([]byte, 1024)}); st != nvme.SCLBAOutOfRange {
			t.Fatalf("boundary: %v", st)
		}
	})
}

func TestCryptTargetEncryptsOnDisk(t *testing.T) {
	b := newBench()
	key := bytes.Repeat([]byte{9}, 64)
	crypt, err := dm.NewCrypt(b.env, b.bdev, key, dm.DefaultCryptParams(), b.cpu)
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte{0x42, 0x43}, 1024) // 4 sectors
	b.run(t, func(p *sim.Proc) {
		if st := bioWait(p, b.th, crypt, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 10, Data: append([]byte{}, plain...)}); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// On-disk bytes are ciphertext...
		raw := make([]byte, len(plain))
		b.store.ReadBlocks(10, raw)
		if bytes.Equal(raw, plain) {
			t.Fatal("plaintext leaked to disk")
		}
		// ...that match an independent XTS computation (dm-crypt format).
		want := make([]byte, len(plain))
		xts.Must(key).EncryptBlocks(want, plain, 10, 512)
		if !bytes.Equal(raw, want) {
			t.Fatal("ciphertext not dm-crypt compatible")
		}
		// Reads decrypt transparently.
		got := make([]byte, len(plain))
		if st := bioWait(p, b.th, crypt, &blockdev.Bio{Op: blockdev.BioRead, Sector: 10, Data: got}); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(got, plain) {
			t.Fatal("decrypt mismatch")
		}
	})
	if crypt.Encrypted == 0 || crypt.Decrypted == 0 {
		t.Fatal("kcryptd did no work")
	}
}

func TestCryptPreservesCallerBuffer(t *testing.T) {
	b := newBench()
	crypt, _ := dm.NewCrypt(b.env, b.bdev, make([]byte, 32), dm.DefaultCryptParams(), b.cpu)
	b.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{5}, 512)
		orig := append([]byte{}, data...)
		bioWait(p, b.th, crypt, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 0, Data: data})
		if !bytes.Equal(data, orig) {
			t.Fatal("dm-crypt clobbered the write buffer")
		}
	})
}

func TestMirrorWritesBothReadsPrimary(t *testing.T) {
	b := newBench()
	// Secondary: a remote device over NVMe-oF.
	remoteCPU := sim.NewCPU(b.env, 4)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rstore := device.NewMemStore(512)
	rdev := device.New(b.env, rp, rstore)
	rbdev := blockdev.NewNVMeBlockDev(b.env, device.WholeNamespace(rdev, 1), remoteCPU, 3, blockdev.DefaultCosts())
	link := nvmeof.DefaultLink(b.env)
	tgt := nvmeof.NewTarget(b.env, rbdev, remoteCPU)
	init := nvmeof.NewInitiator(b.env, link, tgt)

	mir := &dm.Mirror{Primary: b.bdev, Secondary: init}
	data := bytes.Repeat([]byte{0xee}, 1024)
	b.run(t, func(p *sim.Proc) {
		if st := bioWait(p, b.th, mir, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 20, Data: data}); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		// Both stores hold the data.
		got := make([]byte, 1024)
		b.store.ReadBlocks(20, got)
		if !bytes.Equal(got, data) {
			t.Fatal("primary missing data")
		}
		rstore.ReadBlocks(20, got)
		if !bytes.Equal(got, data) {
			t.Fatal("secondary missing data (not replicated)")
		}
		// Reads come from the primary only.
		before := tgt.Served
		if st := bioWait(p, b.th, mir, &blockdev.Bio{Op: blockdev.BioRead, Sector: 20, Data: got}); !st.OK() {
			t.Fatal(st)
		}
		if tgt.Served != before {
			t.Fatal("read went to the remote leg")
		}
	})
}

func TestMirrorWriteWaitsForSlowerLeg(t *testing.T) {
	b := newBench()
	remoteCPU := sim.NewCPU(b.env, 2)
	rp := device.Default970EvoPlus()
	rp.JitterPct, rp.TailProb = 0, 0
	rdev := device.New(b.env, rp, device.NullStore{})
	rbdev := blockdev.NewNVMeBlockDev(b.env, device.WholeNamespace(rdev, 1), remoteCPU, 1, blockdev.DefaultCosts())
	link := nvmeof.NewLink(b.env, 300*sim.Microsecond, 6e9) // slow WAN-ish link
	tgt := nvmeof.NewTarget(b.env, rbdev, remoteCPU)
	mir := &dm.Mirror{Primary: b.bdev, Secondary: nvmeof.NewInitiator(b.env, link, tgt)}
	b.run(t, func(p *sim.Proc) {
		start := p.Now()
		if st := bioWait(p, b.th, mir, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 0, Data: make([]byte, 512)}); !st.OK() {
			t.Fatal(st)
		}
		if p.Now().Sub(start) < 600*sim.Microsecond {
			t.Fatalf("mirror write completed in %v, before the slow remote leg", p.Now().Sub(start))
		}
	})
}

func TestURingSubmitReap(t *testing.T) {
	b := newBench()
	ring := blockdev.NewURing(b.env, b.bdev, blockdev.DefaultURingCosts())
	b.run(t, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{1}, 512)
		for i := uint64(0); i < 8; i++ {
			ring.Submit(p, b.th, blockdev.BioWrite, i, data, i)
		}
		var seen []uint64
		for len(seen) < 8 {
			for _, cqe := range ring.Reap(p, b.th, 0) {
				if !cqe.Status.OK() {
					t.Fatalf("cqe status %v", cqe.Status)
				}
				seen = append(seen, cqe.UserData)
			}
			p.Sleep(5 * sim.Microsecond)
		}
		if ring.Submitted != 8 || ring.Reaped != 8 {
			t.Fatalf("stats %d/%d", ring.Submitted, ring.Reaped)
		}
	})
}

func TestKernelAdapterTranslation(t *testing.T) {
	b := newBench()
	gm := newGuestMem()
	ka := blockdev.NewKernelAdapter(b.env, b.bdev, 9, []*sim.Thread{b.cpu.ThreadOn(6, "kernel/kq")})
	b.run(t, func(p *sim.Proc) {
		// Build a write command against guest memory.
		base := gm.MustAllocPages(1)
		data := bytes.Repeat([]byte{0xf0}, 512)
		gm.WriteAt(data, base)
		cmd := nvme.NewRW(nvme.OpWrite, 1, 1, 40, 1, base, 0)
		st := submitKA(p, ka, cmd, gm)
		if !st.OK() {
			t.Fatalf("write: %v", st)
		}
		got := make([]byte, 512)
		b.store.ReadBlocks(40, got)
		if !bytes.Equal(got, data) {
			t.Fatal("kernel path write lost data")
		}
		// Read back through the kernel path.
		base2 := gm.MustAllocPages(1)
		cmd2 := nvme.NewRW(nvme.OpRead, 2, 1, 40, 1, base2, 0)
		if st := submitKA(p, ka, cmd2, gm); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		gm.ReadAt(got, base2)
		if !bytes.Equal(got, data) {
			t.Fatal("kernel path read mismatch")
		}
		// Unsupported opcodes are rejected (vendor commands need fast path).
		var vc nvme.Command
		vc.SetOpcode(0xc1)
		if st := submitKA(p, ka, vc, gm); st != nvme.SCInvalidOpcode {
			t.Fatalf("vendor via kernel path: %v", st)
		}
	})
}

func submitKA(p *sim.Proc, ka *blockdev.KernelAdapter, cmd nvme.Command, mem nvme.Memory) nvme.Status {
	cond := sim.NewCond(p.Env())
	var status nvme.Status
	done := false
	ka.Submit(cmd, mem, func(st nvme.Status) { status = st; done = true; cond.Signal(nil) })
	for !done {
		cond.Wait()
	}
	return status
}
