package dm

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// Mirror is the dm-mirror (RAID1) target: writes go synchronously to both
// legs and complete when both finish; reads are served by the primary leg.
// The paper's replication baseline stacks this over a local NVMe block
// device and a remote NVMe-oF-attached device.
type Mirror struct {
	Primary   blockdev.BlockDevice
	Secondary blockdev.BlockDevice

	// Stats
	Reads, Writes uint64
}

// NumSectors implements BlockDevice (the smaller leg bounds the mirror).
func (m *Mirror) NumSectors() uint64 {
	a, b := m.Primary.NumSectors(), m.Secondary.NumSectors()
	if a < b {
		return a
	}
	return b
}

// SubmitBio implements BlockDevice.
func (m *Mirror) SubmitBio(p *sim.Proc, th *sim.Thread, b *Bio) {
	switch b.Op {
	case blockdev.BioRead:
		m.Reads++
		m.Primary.SubmitBio(p, th, b)
	case blockdev.BioWrite, blockdev.BioFlush, blockdev.BioDiscard:
		if b.Op == blockdev.BioWrite {
			m.Writes++
		}
		remaining := 2
		var firstErr nvme.Status = nvme.SCSuccess
		orig := b.OnDone
		join := func(st nvme.Status) {
			if !st.OK() && firstErr.OK() {
				firstErr = st
			}
			remaining--
			if remaining == 0 {
				orig(firstErr)
			}
		}
		b1 := *b
		b1.OnDone = join
		b2 := *b
		b2.OnDone = join
		m.Primary.SubmitBio(p, th, &b1)
		m.Secondary.SubmitBio(p, th, &b2)
	}
}
