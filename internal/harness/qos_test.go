package harness

import "testing"

// TestQoSIsolationE2E runs the qos experiment at a fixed seed and checks
// the isolation claims end to end: the WFQ-protected victim keeps its p99
// within 2x of its solo run while the aggressor offers more than 10x its
// contracted rate, the aggressor is held to its contract, and the
// closed-loop pair converges to the 3:1 weight ratio.
func TestQoSIsolationE2E(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	tab := qosTable(o)

	soloP99 := tab.Cell("victim solo", "victim p99 us")
	noqosP99 := tab.Cell("no-qos + aggressor", "victim p99 us")
	wfqP99 := tab.Cell("wfq + capped aggressor", "victim p99 us")
	if soloP99 <= 0 {
		t.Fatalf("solo p99 = %v, want > 0", soloP99)
	}
	if wfqP99 > 2*soloP99 {
		t.Errorf("wfq victim p99 %.1f us > 2x solo %.1f us: isolation failed", wfqP99, soloP99)
	}
	if noqosP99 <= wfqP99 {
		t.Errorf("no-qos victim p99 %.1f us <= wfq %.1f us: aggressor not disruptive, scenario too weak", noqosP99, wfqP99)
	}

	// The aggressor must genuinely offer >10x its contract when unshaped...
	contract := float64(aggrContractIOPS) / 1e3
	if unshaped := tab.Cell("no-qos + aggressor", "aggr kIOPS"); unshaped < 10*contract {
		t.Errorf("unshaped aggressor %.1f kIOPS < 10x contract %.1f kIOPS", unshaped, contract)
	}
	// ...and be held to the contract (within 20%) under the arbiter.
	if shaped := tab.Cell("wfq + capped aggressor", "aggr kIOPS"); shaped < 0.8*contract || shaped > 1.2*contract {
		t.Errorf("shaped aggressor %.1f kIOPS outside 20%% of contract %.1f kIOPS", shaped, contract)
	}
	// The victim keeps its full rate under the arbiter.
	soloK := tab.Cell("victim solo", "victim kIOPS")
	if wfqK := tab.Cell("wfq + capped aggressor", "victim kIOPS"); wfqK < 0.95*soloK {
		t.Errorf("wfq victim %.1f kIOPS < solo %.1f kIOPS", wfqK, soloK)
	}

	// Closed-loop pair at 3:1 weights: throughput ratio converges to the
	// weights (generous band — the probe quantum and poll overhead shift
	// the exact split).
	v := tab.Cell("wfq 3:1 closed-loop", "victim kIOPS")
	a := tab.Cell("wfq 3:1 closed-loop", "aggr kIOPS")
	if a <= 0 {
		t.Fatalf("closed-loop aggressor %.1f kIOPS, want > 0", a)
	}
	if ratio := v / a; ratio < 2.2 || ratio > 3.8 {
		t.Errorf("closed-loop throughput ratio %.2f, want ~3 (weights 3:1)", ratio)
	}
}
