package harness

import (
	"nvmetro/internal/cow"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
)

// Table1LoC rebuilds Table I: source sizes of the classifier and UIF
// implementations. Classifier rows count eBPF assembly lines; UIF rows
// count Go lines. The paper's numbers (32/520/501/16/307 lines of C and
// C++, 1116 for the framework) differ in absolute terms — different
// languages — but the ordering (classifiers tiny, UIFs small, framework
// carrying the weight) is the reproduced claim.
func Table1LoC() *Table {
	lc := storfn.LineCounts()
	t := &Table{ID: "table1", Title: "Source code sizes (this implementation)", Unit: "lines", Cols: []string{"Lines"}}
	t.Add("Encryptor  | Classifier (eBPF asm)", float64(lc["encryptor-classifier"]))
	t.Add("Encryptor  | Normal UIF (Go)", float64(lc["encryptor-uif"]))
	t.Add("Encryptor  | SGX UIF (Go)", float64(lc["sgx-uif"]))
	t.Add("Replicator | Classifier (eBPF asm)", float64(lc["replicator-classifier"]))
	t.Add("Replicator | UIF (Go)", float64(lc["replicator-uif"]))
	t.Add("Cache      | Classifier (eBPF asm)", float64(lc["cache-classifier"]))
	t.Add("Cache      | UIF (Go)", float64(lc["cache-uif"]))
	t.Add("Partition  | Classifier (eBPF asm)", float64(lc["partition-classifier"]))
	t.Add("Snapshot   | CoW store (Go)", float64(cow.Lines()["cow-store"]))
	t.Add("Snapshot   | Clone wiring (Go)", float64(stack.SnapshotWiringLines()))
	t.Add("Framework  | (Go)", float64(uif.FrameworkLines()))
	t.Notes = "Paper (Table I): classifier 32/16, UIFs 520/501/307, framework 1116 lines."
	return t
}
