package harness

import (
	"testing"
)

// TestBootStormE2E is the acceptance run: 128 tenants cloned from one
// golden image with end-to-end integrity armed, against the flat
// per-tenant baseline under the same total cache budget.
func TestBootStormE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("boot storm E2E is a long test")
	}
	o := Options{Quick: true, Seed: 7}
	const vms = 128
	shared := runBootstorm(o, vms, bootImageBlocksQuick, bootCacheChunks, true, 0)
	flat := runBootstorm(o, vms, bootImageBlocksQuick, bootCacheChunks, false, 0)

	for name, r := range map[string]bootstormRun{"shared": shared, "flat": flat} {
		if !r.drained {
			t.Errorf("%s: outstanding guest commands not drained", name)
		}
		if r.guardBad != 0 {
			t.Errorf("%s: guard_bad = %d, want 0 with integrity on", name, r.guardBad)
		}
		if r.res.Errors != 0 {
			t.Errorf("%s: %d fio errors", name, r.res.Errors)
		}
		if !r.baseOK {
			t.Errorf("%s: sealed golden CRCs moved under tenant writes", name)
		}
		if r.cloneCopies != 0 {
			t.Errorf("%s: cloning copied %d chunks, want 0", name, r.cloneCopies)
		}
		if r.divergent != vms {
			t.Errorf("%s: %d/%d tenants diverged", name, r.divergent, vms)
		}
		if r.distinctCRC != vms {
			t.Errorf("%s: %d distinct tenant content CRCs, want %d", name, r.distinctCRC, vms)
		}
	}

	// The shared regime's whole point: one tenant's miss warms every other
	// tenant, so its hit rate must beat the flat layout's sliced caches.
	if shared.hitRatio <= flat.hitRatio {
		t.Errorf("shared hit ratio %.3f not above flat %.3f", shared.hitRatio, flat.hitRatio)
	}
	// Content-addressing: the flat fleet stores ~N copies of the image;
	// the shared fleet stores one plus private divergence.
	if shared.uniqChunks*8 >= flat.uniqChunks {
		t.Errorf("unique chunks: shared %d vs flat %d — no dedup win", shared.uniqChunks, flat.uniqChunks)
	}
	// Checkpointing the diverged clones dedups identical cross-tenant
	// state; flat indexes are private, so sharing is impossible there.
	if shared.dedupHits == 0 {
		t.Error("no cross-tenant dedup hits in the shared regime")
	}
}

// TestBootStormCloneCostFlat pins the O(metadata) clone claim: quadrupling
// the image size must not change the clone's layer-chain length nor make
// cloning copy chunks.
func TestBootStormCloneCostFlat(t *testing.T) {
	o := Options{Quick: true, Seed: 11}
	small := runBootstorm(o, 8, bootImageBlocksQuick, bootCacheChunks, true, 0)
	big := runBootstorm(o, 8, 4*bootImageBlocksQuick, bootCacheChunks, true, 0)
	if small.cloneLayers != big.cloneLayers {
		t.Errorf("clone layers grew with image size: %d -> %d", small.cloneLayers, big.cloneLayers)
	}
	if small.cloneCopies != 0 || big.cloneCopies != 0 {
		t.Errorf("cloning copied chunks: small=%d big=%d", small.cloneCopies, big.cloneCopies)
	}
}

// TestBootStormDeterminism reruns one cell with the same seed and requires
// an identical counter record — the same-seed byte-identical-CSV invariant
// for the bootstorm table.
func TestBootStormDeterminism(t *testing.T) {
	o := Options{Quick: true, Seed: 3}
	a := runBootstorm(o, 8, bootImageBlocksQuick, bootCacheChunks, true, 0)
	b := runBootstorm(o, 8, bootImageBlocksQuick, bootCacheChunks, true, 0)
	if !a.counters.Equal(&b.counters) {
		t.Fatalf("same-seed counter records differ:\n%s\n%s", a.counters.String(), b.counters.String())
	}
	if a.res.Ops != b.res.Ops || a.hitRatio != b.hitRatio || a.distinctCRC != b.distinctCRC {
		t.Fatalf("same-seed results differ: ops %d/%d hit %.6f/%.6f crcs %d/%d",
			a.res.Ops, b.res.Ops, a.hitRatio, b.hitRatio, a.distinctCRC, b.distinctCRC)
	}
}

// TestBootStormTableQuick renders the quick table and applies the per-row
// acceptance bit — the smoke-level gate used by make bootstorm-smoke.
func TestBootStormTableQuick(t *testing.T) {
	tbl := bootstormTable(Options{Quick: true, Seed: 1})
	if len(tbl.Rows) == 0 {
		t.Fatal("empty bootstorm table")
	}
	for _, r := range tbl.Rows {
		if ok := tbl.Cell(r.Label, "ok"); ok != 1 {
			t.Errorf("row %q not ok", r.Label)
		}
		if bad := tbl.Cell(r.Label, "guard_bad"); bad != 0 {
			t.Errorf("row %q guard_bad = %v", r.Label, bad)
		}
	}
	// Shared beats flat on cache hit rate at every fleet size.
	pairs := [][2]string{{"shared N=8", "flat N=8"}, {"shared N=16", "flat N=16"}}
	for _, p := range pairs {
		s, f := tbl.Cell(p[0], "hit_ratio"), tbl.Cell(p[1], "hit_ratio")
		if s <= f {
			t.Errorf("%s hit_ratio %.3f not above %s %.3f", p[0], s, p[1], f)
		}
	}
}
