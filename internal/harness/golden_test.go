package harness

import (
	"os"
	"path/filepath"
	"testing"
)

// goldenDir holds quick-mode seed-1 CSVs rendered by the event-queue
// implementation the scheduler rewrite replaced. Byte-identity against them
// is the determinism contract of the DES core: any change to event ordering,
// RNG consumption, or table assembly shows up here as a diff.
const goldenDir = "testdata/golden-quick"

// goldenOptions is the exact configuration the goldens were generated with.
func goldenOptions() Options { return Options{Quick: true, Seed: 1} }

// TestGoldenCSVs re-runs every experiment with a checked-in golden and
// requires byte-identical CSV output. In -short mode only the cheap
// experiments run; the race detector also gets the short list, because the
// full sweep is single-simulation determinism work that plain `go test`
// and the non-race sim-smoke line already cover in full.
func TestGoldenCSVs(t *testing.T) {
	ids := []string{"fig5", "table2", "qos"}
	if !testing.Short() && !raceEnabled {
		ids = []string{
			"fig3", "fig4", "fig5", "fig6", "qos", "fault",
			"resync", "cache", "chaos", "scrub", "bootstorm",
			"scale", "table1", "table2",
		}
	}
	covered := map[string]bool{}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			for _, tbl := range e.Run(goldenOptions()) {
				covered[tbl.ID] = true
				path := filepath.Join(goldenDir, tbl.ID+".csv")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden for table %s: %v", tbl.ID, err)
				}
				if got := tbl.CSV(); got != string(want) {
					t.Errorf("table %s diverged from %s:\n--- got ---\n%s--- want ---\n%s",
						tbl.ID, path, got, want)
				}
			}
		})
	}
	if testing.Short() || raceEnabled {
		return
	}
	// Every golden must have been exercised; a stale file would silently
	// stop guarding anything.
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		id := ent.Name()[:len(ent.Name())-len(".csv")]
		if !covered[id] {
			t.Errorf("golden %s matched no produced table", ent.Name())
		}
	}
}
