package harness

import (
	"bytes"
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/extfs"
	"nvmetro/internal/fio"
	"nvmetro/internal/lsm"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/ycsb"
)

// encryptionKey is the fixed 512-bit XTS key used across the experiments.
var encryptionKey = bytes.Repeat([]byte{0x42, 0x17}, 32)

// solFactory builds a solution on a freshly created host (and, for
// replication, its remote peer).
type solFactory func(env *sim.Env, h *stack.Host) stack.Solution

// basicSolutions is the Fig. 3/4/6/11 lineup, in the paper's legend order.
func basicSolutions() []namedSol {
	return []namedSol{
		{"NVMetro", func(env *sim.Env, h *stack.Host) stack.Solution { return stack.NewNVMetro(h) }},
		{"MDev", func(env *sim.Env, h *stack.Host) stack.Solution { return stack.NewMDev(h) }},
		{"Passthrough", func(env *sim.Env, h *stack.Host) stack.Solution { return stack.NewPassthrough(h) }},
		{"QEMU", func(env *sim.Env, h *stack.Host) stack.Solution { return stack.NewQEMU(h) }},
		{"Vhost", func(env *sim.Env, h *stack.Host) stack.Solution { return stack.NewVhostSCSI(h) }},
		{"SPDK", func(env *sim.Env, h *stack.Host) stack.Solution { return stack.NewSPDK(h) }},
	}
}

// encSolutions is the Fig. 7/8/12 lineup.
func encSolutions() []namedSol {
	return []namedSol{
		{"NVMetro Encr.", func(env *sim.Env, h *stack.Host) stack.Solution {
			return stack.NewNVMetro(h).WithEncryption(encryptionKey, false)
		}},
		{"NVMetro SGX", func(env *sim.Env, h *stack.Host) stack.Solution {
			return stack.NewNVMetro(h).WithEncryption(encryptionKey, true)
		}},
		{"dm-crypt", func(env *sim.Env, h *stack.Host) stack.Solution {
			return stack.NewVhostDMCrypt(h, encryptionKey)
		}},
	}
}

// repSolutions is the Fig. 9/10/13 lineup. Each factory builds a remote
// host with the secondary drive connected over the simulated fabric.
func repSolutions() []namedSol {
	remote := func(env *sim.Env) *stack.RemoteHost {
		p := device.Default970EvoPlus()
		return stack.NewRemoteHost(env, 4, p, device.NullStore{})
	}
	return []namedSol{
		{"NVMetro Repl.", func(env *sim.Env, h *stack.Host) stack.Solution {
			return stack.NewNVMetro(h).WithReplication(remote(env).Secondary())
		}},
		{"dm-mirror", func(env *sim.Env, h *stack.Host) stack.Solution {
			return stack.NewVhostDMMirror(h, remote(env).Secondary())
		}},
	}
}

type namedSol struct {
	name string
	mk   solFactory
}

// windows returns (warmup, duration) for throughput runs.
func (o Options) windows() (sim.Duration, sim.Duration) {
	if o.Quick {
		return 1 * sim.Millisecond, 8 * sim.Millisecond
	}
	return 2 * sim.Millisecond, 20 * sim.Millisecond
}

// latWindows returns (warmup, duration) for fixed-rate latency runs.
func (o Options) latWindows() (sim.Duration, sim.Duration) {
	if o.Quick {
		return 2 * sim.Millisecond, 30 * sim.Millisecond
	}
	return 2 * sim.Millisecond, 100 * sim.Millisecond
}

// newBed builds a fresh testbed host (12 cores, 4 reserved for the guest,
// matching the PowerEdge R420 with a 4-core VM).
func newBed(o Options, backing device.Store) (*sim.Env, *stack.Host) {
	env := sim.New(o.Seed + 1)
	p := stack.DefaultParams()
	return env, stack.NewHost(env, 12, 4, p, backing)
}

// runFio provisions one 4-vCPU VM under the solution and runs cfg with the
// given job count.
func runFio(o Options, mk solFactory, cfg fio.Config, jobs int) fio.Result {
	env, h := newBed(o, device.NullStore{})
	defer env.Close()
	v := h.NewVM(4, 512<<20)
	sol := mk(env, h)
	disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))
	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	return fio.Run(env, h.CPU, targets, cfg)
}

// runFioScaled runs the Fig. 5 setup: n single-vCPU VMs over partitions of
// a shared namespace, all served by one shared NVMetro worker.
func runFioScaled(o Options, n int, cfg fio.Config) fio.Result {
	env := sim.New(o.Seed + 1)
	p := stack.DefaultParams()
	h := stack.NewHost(env, 12, 8, p, device.NullStore{})
	defer env.Close()
	sol := stack.NewNVMetroShared(h, 1)
	parts := device.Carve(h.Dev, 1, n)
	var targets []fio.Target
	for i := 0; i < n; i++ {
		v := h.NewVM(1, 16<<20)
		disk := sol.Provision(v, parts[i])
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(0)})
	}
	return fio.Run(env, h.CPU, targets, cfg)
}

// ycsbResult is one YCSB run's outcome.
type ycsbResult struct {
	KOpsPerSec float64
	CPUCores   float64
}

// runYCSB runs one workload with the given job count (each job its own DB
// instance on its own filesystem window, as in the paper).
func runYCSB(o Options, mk solFactory, w ycsb.Workload, jobs int) ycsbResult {
	env, h := newBed(o, device.NewMemStore(512))
	defer env.Close()
	v := h.NewVM(4, 512<<20)
	sol := mk(env, h)
	disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))

	cfg := ycsb.DefaultConfig()
	cfg.Seed = o.Seed
	if o.Quick {
		cfg.Records = 2500
		cfg.Duration = 20 * sim.Millisecond
		cfg.Warmup = 2 * sim.Millisecond
	}

	loaded := 0
	start := sim.NewCond(env)
	var measFrom, measTo sim.Time
	clients := make([]*ycsb.Client, jobs)
	failures := 0

	window := disk.Blocks() / uint64(jobs)
	for j := 0; j < jobs; j++ {
		j := j
		env.Go(fmt.Sprintf("ycsb-job%d", j), func(p *sim.Proc) {
			vcpu := v.VCPU(j % v.NumVCPUs())
			fs, err := extfs.MountAt(p, v, disk, vcpu, extfs.DefaultParams(), uint64(j)*window, window)
			if err != nil {
				failures++
				panic(err)
			}
			db, err := lsm.Open(p, fs, vcpu, lsm.DefaultParams())
			if err != nil {
				failures++
				panic(err)
			}
			c := ycsb.NewClient(db, cfg, o.Seed+int64(j))
			clients[j] = c
			if err := c.Load(p); err != nil {
				failures++
				panic(err)
			}
			loaded++
			start.Wait()
			if err := c.Run(p, w, measFrom, measTo); err != nil {
				failures++
				panic(err)
			}
		})
	}
	// Drive the load phase to completion.
	for loaded < jobs {
		env.RunUntil(env.Now().Add(50 * sim.Millisecond))
		if env.Now() > sim.Time(1000*sim.Second) {
			panic("harness: YCSB load phase did not converge")
		}
	}
	measFrom = env.Now().Add(cfg.Warmup)
	measTo = measFrom.Add(cfg.Duration)
	start.Broadcast()
	env.RunUntil(measFrom)
	snap := h.CPU.Snapshot()
	env.RunUntil(measTo)
	usage := h.CPU.Since(snap)

	var ops uint64
	for _, c := range clients {
		if c != nil {
			ops += c.Ops.Value()
		}
	}
	return ycsbResult{
		KOpsPerSec: float64(ops) / cfg.Duration.Seconds() / 1e3,
		CPUCores:   usage.Cores(),
	}
}
