package harness

import (
	"os"
	"testing"

	"nvmetro/internal/fio"
	"nvmetro/internal/ycsb"
)

// These tests assert the paper's qualitative claims (who wins, approximate
// ratios) against quick harness runs, so that a regression anywhere in the
// stack is caught by `go test`.

var opt = Options{Quick: true, Seed: 7}

func TestShapeTable1(t *testing.T) {
	tab := Table1LoC()
	if len(tab.Rows) < 6 {
		t.Fatal("table1 incomplete")
	}
	cls := tab.Cell("Encryptor  | Classifier (eBPF asm)", "Lines")
	fw := tab.Cell("Framework  | (Go)", "Lines")
	uifLines := tab.Cell("Encryptor  | Normal UIF (Go)", "Lines")
	// Paper's ordering: classifiers tiny << UIFs << framework.
	if !(cls > 10 && cls < 100) {
		t.Errorf("classifier size %v out of expected range", cls)
	}
	if uifLines <= cls {
		t.Errorf("UIF (%v) should be larger than classifier (%v)", uifLines, cls)
	}
	if fw <= uifLines {
		t.Errorf("framework (%v) should be the largest component (uif %v)", fw, uifLines)
	}
	tab.Fprint(os.Stderr)
}

func TestShapeEncryptionFio(t *testing.T) {
	warm, dur := opt.windows()
	run := func(i int, cfg fio.Config, jobs int) float64 {
		return runFio(opt, encSolutions()[i].mk, cfg, jobs).KIOPS()
	}
	const nvEnc, nvSGX, dmCrypt = 0, 1, 2

	// QD1: NVMetro encryption beats dm-crypt by roughly 1.4-1.6x.
	qd1 := fio.Config{Mode: fio.SeqRead, BlockSize: 16 << 10, QD: 1, Warmup: warm, Duration: dur}
	a, b := run(nvEnc, qd1, 1), run(dmCrypt, qd1, 1)
	t.Logf("16K SR qd1: NVMetro Encr %.1f vs dm-crypt %.1f kIOPS (%.2fx)", a, b, a/b)
	if a < b*1.2 {
		t.Errorf("NVMetro encryption (%.1f) should beat dm-crypt (%.1f) by >1.2x at QD1", a, b)
	}

	// High parallelism: NVMetro wins big (paper: 3.2x at 16K reads).
	hq := fio.Config{Mode: fio.SeqRead, BlockSize: 16 << 10, QD: 128, Warmup: warm, Duration: dur}
	a, b = run(nvEnc, hq, 4), run(dmCrypt, hq, 4)
	t.Logf("16K SR qd128/j4: NVMetro Encr %.1f vs dm-crypt %.1f kIOPS (%.2fx)", a, b, a/b)
	if a < b*2 {
		t.Errorf("NVMetro encryption (%.1f) should beat dm-crypt (%.1f) by >2x at high QD", a, b)
	}

	// SGX roughly matches plain at QD1...
	s := run(nvSGX, qd1, 1)
	t.Logf("16K SR qd1: SGX %.1f vs plain %.1f", s, run(nvEnc, qd1, 1))
	if s < run(nvEnc, qd1, 1)*0.7 {
		t.Errorf("SGX (%.1f) should be close to plain encryption at QD1", s)
	}
	// ...but falls behind under heavy load (1 crypto thread vs 2).
	sHeavy := run(nvSGX, hq, 4)
	plainHeavy := run(nvEnc, hq, 4)
	t.Logf("16K SR qd128/j4: SGX %.1f vs plain %.1f", sHeavy, plainHeavy)
	if sHeavy > plainHeavy*0.95 {
		t.Errorf("SGX (%.1f) should trail plain encryption (%.1f) under heavy load", sHeavy, plainHeavy)
	}
}

func TestShapeReplicationFio(t *testing.T) {
	warm, dur := opt.windows()
	sols := repSolutions()
	run := func(i int, cfg fio.Config, jobs int) float64 {
		return runFio(opt, sols[i].mk, cfg, jobs).KIOPS()
	}
	// Reads: NVMetro serves them on the fast path; dm-mirror drags them
	// through vhost+DM (paper: +68% to +291%).
	rd1 := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1, Warmup: warm, Duration: dur}
	a, b := run(0, rd1, 1), run(1, rd1, 1)
	t.Logf("512B RR qd1: NVMetro Repl %.1f vs dm-mirror %.1f (%.2fx)", a, b, a/b)
	if a < b*1.3 {
		t.Errorf("replicated reads: NVMetro (%.1f) should beat dm-mirror (%.1f) by >1.3x", a, b)
	}
	rdH := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 128, Warmup: warm, Duration: dur}
	a, b = run(0, rdH, 4), run(1, rdH, 4)
	t.Logf("512B RR qd128/j4: NVMetro Repl %.1f vs dm-mirror %.1f (%.2fx)", a, b, a/b)
	if a < b*2 {
		t.Errorf("replicated reads at high QD: NVMetro (%.1f) should beat dm-mirror (%.1f) by >2x", a, b)
	}
	// Writes replicate on both (sanity: both complete, reads faster than writes).
	wr := fio.Config{Mode: fio.RandWrite, BlockSize: 512, QD: 1, Warmup: warm, Duration: dur}
	aw := run(0, wr, 1)
	if aw <= 0 {
		t.Fatal("replicated writes made no progress")
	}
	if aw >= a {
		t.Errorf("writes (%.1f) should be slower than reads (%.1f) under replication", aw, a)
	}
}

func TestShapeYCSBBasic(t *testing.T) {
	// At 1 job YCSB is mostly CPU/cache bound: solutions within ~25%.
	// At 4 jobs it becomes I/O bound and NVMetro stays near passthrough.
	sols := basicSolutions()
	get := func(name string, jobs int) float64 {
		for _, s := range sols {
			if s.name == name {
				return runYCSB(opt, s.mk, ycsb.WorkloadA, jobs).KOpsPerSec
			}
		}
		t.Fatalf("no solution %q", name)
		return 0
	}
	nv1, pt1 := get("NVMetro", 1), get("Passthrough", 1)
	t.Logf("YCSB A j1: NVMetro %.1f vs Passthrough %.1f kOps/s", nv1, pt1)
	if nv1 < pt1*0.75 {
		t.Errorf("1-job YCSB should show little variation (NVMetro %.1f vs PT %.1f)", nv1, pt1)
	}
	nv4, pt4 := get("NVMetro", 4), get("Passthrough", 4)
	t.Logf("YCSB A j4: NVMetro %.1f vs Passthrough %.1f kOps/s", nv4, pt4)
	if nv4 < pt4*0.85 {
		t.Errorf("4-job YCSB: NVMetro (%.1f) should stay within ~15%% of passthrough (%.1f)", nv4, pt4)
	}
	if nv4 < nv1*1.2 {
		t.Errorf("4 jobs (%.1f) should outrun 1 job (%.1f)", nv4, nv1)
	}
}

func TestShapeFig5Scalability(t *testing.T) {
	warm, dur := opt.windows()
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 32, Warmup: warm, Duration: dur}
	one := runFioScaled(opt, 1, cfg).KIOPS()
	four := runFioScaled(opt, 4, cfg).KIOPS()
	eight := runFioScaled(opt, 8, cfg).KIOPS()
	t.Logf("fig5 512B RR qd32: 1 VM %.1f, 4 VMs %.1f, 8 VMs %.1f kIOPS", one, four, eight)
	if four < one*1.5 || eight < four*0.95 {
		t.Errorf("throughput must grow with VM density: %v %v %v", one, four, eight)
	}
}

func TestShapeCPUOrdering(t *testing.T) {
	warm, dur := opt.windows()
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1, Warmup: warm, Duration: dur}
	cpuOf := map[string]float64{}
	for _, s := range basicSolutions() {
		r := runFio(opt, s.mk, cfg, 1)
		cpuOf[s.name] = r.CPUCores
	}
	t.Logf("QD1 CPU: %v", cpuOf)
	// Fig. 11: passthrough lowest; SPDK highest (spinning reactors).
	for name, c := range cpuOf {
		if name == "Passthrough" {
			continue
		}
		if c <= cpuOf["Passthrough"] {
			t.Errorf("%s CPU (%.2f) should exceed passthrough (%.2f)", name, c, cpuOf["Passthrough"])
		}
	}
	if cpuOf["SPDK"] <= cpuOf["NVMetro"] {
		t.Errorf("SPDK (%.2f) should burn the most CPU (NVMetro %.2f)", cpuOf["SPDK"], cpuOf["NVMetro"])
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fault", "resync", "cache", "qos", "chaos", "scrub", "bootstorm", "scale"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(List()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(List()), len(want))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Unit: "u", Cols: []string{"a", "b"}}
	tab.Add("row1", 1.5, 2.5)
	if got := tab.Cell("row1", "b"); got != 2.5 {
		t.Fatalf("cell %v", got)
	}
	if got := tab.Cell("row1", "nope"); got != -1 {
		t.Fatalf("missing col %v", got)
	}
	csv := tab.CSV()
	if csv != "config,a,b\nrow1,1.500,2.500\n" {
		t.Fatalf("csv %q", csv)
	}
}
