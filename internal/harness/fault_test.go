package harness

import (
	"testing"

	"nvmetro/internal/fault"
	"nvmetro/internal/fio"
	"nvmetro/internal/sim"
)

// End-to-end acceptance: a full replication fio run with 1% media errors
// on the remote device plus a 10 ms fabric outage completes with zero
// hangs (every accepted guest command produces a completion), the
// Replicator reports degraded writes with dirty regions, and re-running
// with the same seed reproduces the identical counter trace.
func TestFaultE2EReplicationWithOutage(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	cfg := faultCfg(o)
	cfg.Mode = fio.RandWrite
	warm, _ := o.windows()
	mk := func() *fault.Plan {
		return fault.NewPlan(o.Seed).
			WithMediaErrors(0.01).
			WithOutage(sim.Time(0).Add(warm+2*sim.Millisecond), 10*sim.Millisecond)
	}
	a := runFaultRepl(o, mk(), nil, cfg, 4)
	if !a.drained {
		t.Fatal("guest commands stuck in flight after the run (hang)")
	}
	if a.counters.Get("rep.degraded") == 0 || a.counters.Get("rep.dirty_blocks") == 0 {
		t.Fatalf("no degraded writes recorded: %s", a.counters.String())
	}
	if a.counters.Get("rep.dirty_regions") == 0 {
		t.Fatalf("degraded writes without dirty regions: %s", a.counters.String())
	}
	if a.counters.Get("of.reconnects") == 0 {
		t.Fatalf("outage ended without a reconnect event: %s", a.counters.String())
	}
	if a.counters.Get("of.requeues") == 0 {
		t.Fatalf("no in-flight commands requeued on link-up: %s", a.counters.String())
	}
	// Degraded mode masks secondary failures entirely: only the remote
	// device and the fabric are faulty, so the guest sees zero errors.
	if a.res.Errors != 0 || a.counters.Get("rt.guest_errors") != 0 {
		t.Fatalf("guest saw errors despite degraded mode: fio=%d router=%d",
			a.res.Errors, a.counters.Get("rt.guest_errors"))
	}

	b := runFaultRepl(o, mk(), nil, cfg, 4)
	if a.counters.String() != b.counters.String() {
		t.Fatalf("same seed produced different fault traces:\n%s\n%s", a.counters.String(), b.counters.String())
	}
	if a.res.Ops != b.res.Ops || a.res.Errors != b.res.Errors {
		t.Fatalf("same seed produced different results: ops %d/%d errors %d/%d",
			a.res.Ops, b.res.Ops, a.res.Errors, b.res.Errors)
	}
}

// Same-seed runs of the fast-path drop scenario must produce identical
// error/retry/timeout counters.
func TestFaultDeterminismFastPath(t *testing.T) {
	o := Options{Quick: true, Seed: 5}
	cfg := faultCfg(o)
	mk := func() *fault.Plan { return fault.NewPlan(o.Seed).WithDrops(0.02, 0) }
	a := runFaultNVMetro(o, mk(), tightRouter, cfg, 4)
	b := runFaultNVMetro(o, mk(), tightRouter, cfg, 4)
	if !a.drained || !b.drained {
		t.Fatal("run did not drain")
	}
	if a.counters.Get("rt.hq_timeouts") == 0 {
		t.Fatalf("drop plan injected nothing: %s", a.counters.String())
	}
	if a.counters.String() != b.counters.String() {
		t.Fatalf("same seed produced different fault traces:\n%s\n%s", a.counters.String(), b.counters.String())
	}
}

// Media errors surface as guest-visible completions on the baseline MDev
// stack too — error propagation is not NVMetro-specific.
func TestFaultMediaErrorsSurfaceOnMDev(t *testing.T) {
	o := Options{Quick: true, Seed: 2}
	fr := runFaultMDev(o, fault.NewPlan(o.Seed).WithMediaErrors(0.05), faultCfg(o), 4)
	if fr.res.Errors == 0 {
		t.Fatalf("5%% media errors produced no guest errors: %s", fr.counters.String())
	}
	if fr.counters.Get("dev.injected") == 0 {
		t.Fatal("injector idle")
	}
}
