package harness

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/fault"
	"nvmetro/internal/fio"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/supervise"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// The chaos experiment kills or wedges each storage function's UIF in the
// middle of a live workload and measures the supervision subsystem end to
// end: the watchdog must detect the failure from the outside (progress
// heartbeat / NSQ residency), the stranded in-flight commands must
// reconcile with no completion lost or misattributed, routing must degrade
// to the per-function fast-path policy with bounded tail latency, and a
// supervised restart must bring throughput back. The replication cell
// layers the chaos over fabric outages so the crash can land mid-resync;
// it must still converge to a bit-identical mirror.
func init() {
	register("chaos", "Chaos: UIF crash/wedge supervision — reconcile, degrade, restart", func(o Options) []*Table {
		return []*Table{chaosTable(o)}
	})
}

// chaosPolicy is the watchdog tuned to the harness windows: detection in a
// few hundred microseconds, restart fast enough to measure reconvergence
// inside the run.
func chaosPolicy(o Options) supervise.Policy {
	pol := supervise.DefaultPolicy()
	pol.HeartbeatInterval = 50 * sim.Microsecond
	pol.StallThreshold = 300 * sim.Microsecond
	pol.ResidencyDeadline = 2 * sim.Millisecond
	pol.RestartBackoff = 200 * sim.Microsecond
	pol.RestartBackoffCap = 1 * sim.Millisecond
	pol.HealthyReset = 5 * sim.Millisecond
	pol.Seed = o.Seed
	return pol
}

// chaosWedge is the injected stall length — far past the stall threshold,
// so a wedge is always a watchdog detection, never a self-heal.
const chaosWedge = 2 * sim.Millisecond

// chaosPlan builds the single-fault plan for one cell.
func chaosPlan(o Options, crash bool) *fault.Plan {
	if crash {
		return fault.NewPlan(o.Seed).WithUIFCrash(0.002, 1)
	}
	return fault.NewPlan(o.Seed).WithUIFWedge(0.002, 1, chaosWedge)
}

// chaosRun is one chaos workload outcome plus its healthy baseline.
type chaosRun struct {
	res       fio.Result // faulted window
	tail      fio.Result // post-recovery window
	counters  metrics.CounterSet
	drained   bool // every accepted guest command completed
	routed    bool // supervisor back on the routed path at the end
	converged bool // replication only: mirror drained to InSync
	mirrorOK  bool // replication only: stores bit-identical
}

// chaosCfg is the chaos workload for the non-replicated functions: zipf-
// skewed so the cache classifier heats buckets and diverts a steady stream
// to the notify path (the encryptor diverts everything regardless).
func chaosCfg(o Options) fio.Config {
	warm, dur := o.windows()
	return fio.Config{
		Mode: fio.RandRW, BlockSize: 4096, QD: 8,
		Warmup: warm, Duration: dur,
		WorkSet: 4 << 20, Zipf: 1.2,
	}
}

// chaosTailCfg is the post-recovery measurement window.
func chaosTailCfg(o Options, cfg fio.Config) fio.Config {
	cfg.Warmup = 500 * sim.Microsecond
	if o.Quick {
		cfg.Duration = 2 * sim.Millisecond
	} else {
		cfg.Duration = 6 * sim.Millisecond
	}
	return cfg
}

// awaitRouted drives the simulation until the supervisor has restarted and
// promoted its function (or a generous bound passes).
func awaitRouted(env *sim.Env, sup *supervise.Supervisor) bool {
	deadline := env.Now().Add(100 * sim.Millisecond)
	for sup.State() != supervise.StateRouted && env.Now() < deadline {
		env.RunUntil(env.Now().Add(100 * sim.Microsecond))
	}
	return sup.State() == supervise.StateRouted
}

// collectChaos folds the per-cell counter sources into out.counters.
func collectChaos(out *chaosRun, sup *supervise.Supervisor, vc *core.Controller, inj *fault.Injector) {
	sup.Collect(&out.counters)
	collectRouter(&out.counters, vc.Router())
	if inj != nil {
		inj.Collect(&out.counters)
	}
	out.counters.Add("fio.errors", out.res.Errors+out.tail.Errors)
}

// runChaosStack runs a solution-provisioned (cache or encryption) stack
// under supervision, arms plan at the UIF attachment site (nil = healthy
// baseline), and measures the faulted window plus a post-recovery tail.
func runChaosStack(o Options, mkSol func(h *stack.Host) *stack.NVMetro, plan *fault.Plan, site string, cfg fio.Config, jobs int) chaosRun {
	env, h := newBed(o, device.NullStore{})
	defer env.Close()
	v := h.NewVM(4, 512<<20)
	sol := mkSol(h).WithSupervision(chaosPolicy(o))
	disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))
	sup := sol.SupervisorFor(v)
	var inj *fault.Injector
	if plan != nil {
		inj = plan.Injector(site)
		sup.SetFaultInjector(inj)
	}
	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := chaosRun{converged: true, mirrorOK: true}
	out.res = fio.Run(env, h.CPU, targets, cfg)
	vc := sol.ControllerFor(v)
	out.drained = drainOutstanding(env, vc.Outstanding)
	out.routed = awaitRouted(env, sup)
	out.tail = fio.Run(env, h.CPU, targets, chaosTailCfg(o, cfg))
	out.drained = out.drained && drainOutstanding(env, vc.Outstanding)
	collectChaos(&out, sup, vc, inj)
	return out
}

// runChaosRepl runs the replication stack under supervision with content-
// backed stores on both legs, scheduled fabric outages (so the chaos can
// land while the resync engine is draining) and plan armed at the UIF
// site, then drives the mirror to convergence and compares the stores.
func runChaosRepl(o Options, plan *fault.Plan, outages []outageSpec, rcfg storfn.ResyncConfig, cfg fio.Config, jobs int) chaosRun {
	store := device.NewMemStore(512)
	env, h := newBed(o, store)
	defer env.Close()
	p := h.Params
	v := h.NewVM(4, 512<<20)
	router := core.NewRouter(env, p.Router, []*sim.Thread{h.HostThread("router")})
	vc := router.Attach(v, device.WholeNamespace(h.Dev, 1))

	rstore := device.NewMemStore(512)
	remote := stack.NewRemoteHost(env, 4, p.Device, rstore)
	for _, ow := range outages {
		remote.Link.ScheduleOutage(ow.at, ow.dur)
	}
	ini := remote.Secondary()(vc.Partition()).(*nvmeof.Initiator)
	rec := resyncRecovery
	rec.BackoffCap = 200 * sim.Microsecond
	rec.Jitter = 0.2
	if err := ini.SetRecovery(rec); err != nil {
		panic(err)
	}
	ring := blockdev.NewURing(env, ini, p.URing)
	fw := uif.NewFramework(env, p.UIF, []*sim.Thread{h.HostThread("uif")})
	rep := storfn.NewReplicator()
	fn := storfn.NewReplicatorSupervision(vc.Partition(), rep)
	pol := chaosPolicy(o)
	sup, err := supervise.Launch(env, fw, vc, ring, 512, fn, pol)
	if err != nil {
		panic(err)
	}
	primary := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(h.Dev, 1), h.CPU, 7, p.Block)
	rs, err := storfn.NewResyncer(env, rep, primary, sup.Attachment(), h.HostThread("resync"), h.Dev.Params().LBAShift, rcfg)
	if err != nil {
		panic(err)
	}
	fn.SetResyncer(rs)
	ini.OnReconnect(rs.OnLinkUp)
	var inj *fault.Injector
	if plan != nil {
		inj = plan.Injector("uif-replicator")
		sup.SetFaultInjector(inj)
	}

	disk := vm.NewNVMeDisk(v, vc, 128, p.Driver)
	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := chaosRun{}
	out.res = fio.Run(env, h.CPU, targets, cfg)
	out.drained = drainOutstanding(env, vc.Outstanding)
	out.routed = awaitRouted(env, sup)
	out.tail = fio.Run(env, h.CPU, targets, chaosTailCfg(o, cfg))
	out.drained = out.drained && drainOutstanding(env, vc.Outstanding)

	// Drive the mirror to convergence; the last outage (or the chaos
	// degradation itself) may have outlived the workload, leaving no
	// link-up to retrigger the drain.
	deadline := env.Now().Add(2 * sim.Second)
	for rs.State() != storfn.StateInSync && env.Now() < deadline {
		if rs.State() == storfn.StateDegraded {
			rs.Trigger()
		}
		env.RunUntil(env.Now().Add(sim.Millisecond))
	}
	out.converged = rs.State() == storfn.StateInSync && rep.Dirty.Blocks() == 0
	out.mirrorOK = store.ContentCRC() == rstore.ContentCRC()

	collectChaos(&out, sup, vc, inj)
	collectReplicator(&out.counters, rep)
	collectInitiator(&out.counters, remote.Link, ini)
	rs.Collect(&out.counters)
	return out
}

// chaosCells returns the (function × fault) grid as labeled closures; each
// takes a nil plan for the healthy baseline.
type chaosCell struct {
	name string
	run  func(plan *fault.Plan) chaosRun
}

func chaosCells(o Options) []chaosCell {
	cfg := chaosCfg(o)
	wcfg := cfg
	wcfg.Mode = fio.RandWrite // only writes are mirrored
	warm, _ := o.windows()
	at := func(d sim.Duration) sim.Time { return sim.Time(0).Add(warm + d) }
	// A slow drain keeps the resync engine busy for most of the window, so
	// a rate-drawn chaos event has a real chance to land mid-resync.
	slow := storfn.DefaultResyncConfig()
	slow.Rate = 20e6
	outages := []outageSpec{{at(sim.Millisecond), 2 * sim.Millisecond}}
	cacheSol := func(h *stack.Host) *stack.NVMetro { return stack.NewNVMetro(h).WithCache(storfn.DefaultCacheParams()) }
	encrSol := func(h *stack.Host) *stack.NVMetro { return stack.NewNVMetro(h).WithEncryption(encryptionKey, false) }
	return []chaosCell{
		{"cacher", func(plan *fault.Plan) chaosRun {
			return runChaosStack(o, cacheSol, plan, "uif-cacher", cfg, 4)
		}},
		{"encryptor", func(plan *fault.Plan) chaosRun {
			return runChaosStack(o, encrSol, plan, "uif-encryptor", cfg, 4)
		}},
		{"replicator", func(plan *fault.Plan) chaosRun {
			return runChaosRepl(o, plan, outages, slow, wcfg, 4)
		}},
	}
}

// chaosOK applies the per-cell acceptance invariants.
func chaosOK(name string, cr chaosRun) bool {
	cs := &cr.counters
	ok := cr.drained && cr.routed && cr.converged && cr.mirrorOK &&
		cs.Get("sup."+name+".detections") >= 1 &&
		cs.Get("sup."+name+".restarts") >= 1
	if name != "encryptor" {
		// Only the fail-stop encryptor may surface (retryable) errors.
		ok = ok && cs.Get("fio.errors") == 0
	}
	return ok
}

// chaosTable runs the grid: every storage function under a crash and a
// wedge, each against its healthy same-seed baseline.
func chaosTable(o Options) *Table {
	t := &Table{
		ID:    "chaos",
		Title: "Chaos: UIF crash/wedge — detection, reconcile, degraded fast path, restart",
		Cols:  []string{"kIOPS", "p99x", "inj", "detect", "reconciled", "requeued", "restarts", "degr_us", "tailx", "errors", "ok"},
	}
	// Shard layout: per grid point (storage function), one healthy-baseline
	// shard plus one shard per fault kind — all nine runs are independent
	// simulations, merged back in (point, shard) order.
	g := o.group()
	type faultRow struct {
		name string
		kind string
		base *chaosRun
		cr   *chaosRun
	}
	var rows []faultRow
	for _, cell := range chaosCells(o) {
		run := cell.run
		base := shard(g, func() chaosRun { return run(nil) })
		for _, f := range []struct {
			kind  string
			crash bool
		}{{"crash", true}, {"wedge", false}} {
			crash := f.crash
			rows = append(rows, faultRow{
				name: cell.name,
				kind: f.kind,
				base: base,
				cr:   shard(g, func() chaosRun { return run(chaosPlan(o, crash)) }),
			})
		}
	}
	g.Run()
	for _, row := range rows {
		base, cr := *row.base, *row.cr
		cs := &cr.counters
		sup := "sup." + row.name + "."
		site := "fault.uif-" + row.name + "."
		p99x, tailx := 0.0, 0.0
		if b := base.res.Lat.P99(); b > 0 {
			p99x = float64(cr.res.Lat.P99()) / float64(b)
		}
		if b := base.res.KIOPS(); b > 0 {
			tailx = cr.tail.KIOPS() / b
		}
		ok := 0.0
		if chaosOK(row.name, cr) {
			ok = 1
		}
		t.Add(row.name+" "+row.kind,
			cr.res.KIOPS(),
			p99x,
			float64(cs.Get(site+"uif-crash")+cs.Get(site+"uif-wedge")),
			float64(cs.Get(sup+"detections")),
			float64(cs.Get(sup+"reconciled_ok")+cs.Get(sup+"reconciled_err")),
			float64(cs.Get(sup+"requeued")),
			float64(cs.Get(sup+"restarts")),
			float64(cs.Get(sup+"degraded_us")),
			tailx,
			float64(cs.Get("fio.errors")),
			ok)
	}
	t.Notes = "p99x/tailx vs healthy same-seed baseline; ok = drained, detected, restarted, converged, and (except the fail-stop encryptor) zero guest errors"
	return t
}
