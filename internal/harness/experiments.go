package harness

import (
	"fmt"

	"nvmetro/internal/fio"
	"nvmetro/internal/ycsb"
)

// fioCase is one Table II configuration.
type fioCase struct {
	bs   uint32
	mode fio.Mode
	qd   int
	jobs int
}

func (c fioCase) label() string {
	return fmt.Sprintf("bs=%s %v qd=%d j=%d", bsName(c.bs), c.mode, c.qd, c.jobs)
}

func bsName(bs uint32) string {
	switch {
	case bs >= 1<<20:
		return fmt.Sprintf("%dM", bs>>20)
	case bs >= 1<<10:
		return fmt.Sprintf("%dK", bs>>10)
	}
	return fmt.Sprintf("%dB", bs)
}

// fig3Grid is the Table II matrix (trimmed under Quick).
func fig3Grid(o Options) []fioCase {
	if o.Quick {
		return []fioCase{
			{512, fio.RandRead, 1, 1}, {512, fio.RandWrite, 1, 1},
			{512, fio.RandRead, 128, 4}, {512, fio.RandRW, 128, 4},
			{16 << 10, fio.SeqRead, 1, 1}, {16 << 10, fio.SeqWrite, 1, 1},
			{16 << 10, fio.SeqRead, 128, 1}, {16 << 10, fio.SeqRead, 128, 4},
			{128 << 10, fio.SeqWrite, 128, 4},
		}
	}
	var cases []fioCase
	for _, m := range []fio.Mode{fio.RandRead, fio.RandWrite, fio.RandRW} {
		cases = append(cases, fioCase{512, m, 1, 1}, fioCase{512, m, 128, 1}, fioCase{512, m, 128, 4})
	}
	for _, bs := range []uint32{16 << 10, 128 << 10} {
		for _, m := range []fio.Mode{fio.SeqRead, fio.SeqWrite, fio.SeqRW} {
			for _, qd := range []int{1, 128} {
				for _, jobs := range []int{1, 4} {
					cases = append(cases, fioCase{bs, m, qd, jobs})
				}
			}
		}
	}
	return cases
}

// fioPair runs a fio grid over a solution set, producing the throughput
// table and its companion CPU table (the paper separates them into a
// performance figure and an overhead figure from the same runs).
func fioPair(o Options, idTp, idCPU, title string, sols []namedSol, grid []fioCase) (tp, cpu *Table) {
	var cols []string
	for _, s := range sols {
		cols = append(cols, s.name)
	}
	tp = &Table{ID: idTp, Title: title, Unit: "kIOPS", Cols: cols}
	cpu = &Table{ID: idCPU, Title: "CPU consumption for " + title, Unit: "avg busy cores", Cols: cols}
	warm, dur := o.windows()
	// Each (case, solution) cell is an isolated deterministic sim; run them
	// across workers and assemble in grid order.
	type cell struct{ tp, cpu float64 }
	cells := make([]cell, len(grid)*len(sols))
	o.forEach(len(cells), func(k int) {
		c, s := grid[k/len(sols)], sols[k%len(sols)]
		cfg := fio.Config{Mode: c.mode, BlockSize: c.bs, QD: c.qd, Warmup: warm, Duration: dur}
		r := runFio(o, s.mk, cfg, c.jobs)
		cells[k] = cell{r.KIOPS(), r.CPUCores}
	})
	for gi, c := range grid {
		var tpCells, cpuCells []float64
		for si := range sols {
			cells := cells[gi*len(sols)+si]
			tpCells = append(tpCells, cells.tp)
			cpuCells = append(cpuCells, cells.cpu)
		}
		tp.Add(c.label(), tpCells...)
		cpu.Add(c.label(), cpuCells...)
	}
	return tp, cpu
}

// cached memoizes expensive figure pairs so e.g. fig3 and fig11 share runs.
var cache = map[string][]*Table{}

func cachedPair(key string, build func() (tp, cpu *Table)) (tp, cpu *Table) {
	if ts, ok := cache[key]; ok {
		return ts[0], ts[1]
	}
	tp, cpu = build()
	cache[key] = []*Table{tp, cpu}
	return tp, cpu
}

func cacheKey(o Options, id string) string {
	// Workers is part of the key only so serial-vs-parallel comparison runs
	// (the determinism regression test) don't alias; results are identical.
	return fmt.Sprintf("%s/q=%v/s=%d/w=%d", id, o.Quick, o.Seed, o.Workers)
}

func fig3Pair(o Options) (tp, cpu *Table) {
	return cachedPair(cacheKey(o, "fig3"), func() (*Table, *Table) {
		return fioPair(o, "fig3", "fig11", "fio performance, basic evaluation", basicSolutions(), fig3Grid(o))
	})
}

func fig7Grid(o Options) []fioCase {
	if o.Quick {
		return []fioCase{
			{16 << 10, fio.SeqRead, 1, 1}, {16 << 10, fio.SeqWrite, 1, 1},
			{16 << 10, fio.SeqRead, 128, 4}, {16 << 10, fio.SeqWrite, 128, 4},
			{128 << 10, fio.SeqWrite, 128, 4},
		}
	}
	var cases []fioCase
	for _, m := range []fio.Mode{fio.RandRead, fio.RandWrite, fio.RandRW} {
		cases = append(cases, fioCase{512, m, 1, 1}, fioCase{512, m, 128, 4})
	}
	for _, bs := range []uint32{16 << 10, 128 << 10} {
		for _, m := range []fio.Mode{fio.SeqRead, fio.SeqWrite, fio.SeqRW} {
			cases = append(cases, fioCase{bs, m, 1, 1}, fioCase{bs, m, 128, 4})
		}
	}
	return cases
}

func fig7Pair(o Options) (tp, cpu *Table) {
	return cachedPair(cacheKey(o, "fig7"), func() (*Table, *Table) {
		return fioPair(o, "fig7", "fig12", "fio performance, disk encryption", encSolutions(), fig7Grid(o))
	})
}

func fig9Pair(o Options) (tp, cpu *Table) {
	return cachedPair(cacheKey(o, "fig9"), func() (*Table, *Table) {
		return fioPair(o, "fig9", "fig13", "fio performance, disk replication", repSolutions(), fig7Grid(o))
	})
}

// ycsbTable runs the six workloads at 1 and 4 jobs for a solution set.
func ycsbTable(o Options, id, title string, sols []namedSol) *Table {
	var cols []string
	for _, s := range sols {
		cols = append(cols, s.name)
	}
	t := &Table{ID: id, Title: title, Unit: "kOps/s", Cols: cols}
	workloads := ycsb.All()
	if o.Quick {
		workloads = []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC, ycsb.WorkloadF}
	}
	type row struct {
		w    ycsb.Workload
		jobs int
	}
	var rows []row
	for _, jobs := range []int{1, 4} {
		for _, w := range workloads {
			rows = append(rows, row{w, jobs})
		}
	}
	cells := make([]float64, len(rows)*len(sols))
	o.forEach(len(cells), func(k int) {
		rw, s := rows[k/len(sols)], sols[k%len(sols)]
		cells[k] = runYCSB(o, s.mk, rw.w, rw.jobs).KOpsPerSec
	})
	for ri, rw := range rows {
		t.Add(fmt.Sprintf("%v j=%d", rw.w, rw.jobs), cells[ri*len(sols):(ri+1)*len(sols)]...)
	}
	return t
}

func init() {
	register("table1", "Source code sizes of NVMetro classifier and UIF implementations", func(o Options) []*Table {
		return []*Table{Table1LoC()}
	})

	register("table2", "List of fio benchmark configurations", func(o Options) []*Table {
		t := &Table{ID: "table2", Title: "fio benchmark configurations (Table II)", Cols: []string{"QD", "jobs"}}
		for _, c := range fig3Grid(Options{}) {
			t.Add(fmt.Sprintf("bs=%s %v", bsName(c.bs), c.mode), float64(c.qd), float64(c.jobs))
		}
		return []*Table{t}
	})

	register("fig3", "Basic evaluations: fio throughput per storage virtualization method", func(o Options) []*Table {
		tp, _ := fig3Pair(o)
		return []*Table{tp}
	})

	register("fig4", "Latency at a fixed 10 kIOPS rate (median and p99)", func(o Options) []*Table {
		sols := basicSolutions()
		var cols []string
		for _, s := range sols {
			cols = append(cols, s.name)
		}
		med := &Table{ID: "fig4", Title: "median latency at 10 kIOPS", Unit: "us", Cols: cols}
		p99 := &Table{ID: "fig4-p99", Title: "p99 latency at 10 kIOPS", Unit: "us", Cols: cols}
		warm, dur := o.latWindows()
		type latCase struct {
			bs   uint32
			mode fio.Mode
			qd   int
		}
		var cases []latCase
		if o.Quick {
			cases = []latCase{{512, fio.RandRead, 1}, {512, fio.RandWrite, 1}, {512, fio.RandRead, 32}}
		} else {
			for _, bs := range []uint32{512, 16 << 10, 128 << 10} {
				for _, m := range []fio.Mode{fio.RandRead, fio.RandWrite} {
					for _, qd := range []int{1, 4, 32, 128} {
						cases = append(cases, latCase{bs, m, qd})
					}
				}
			}
		}
		type cell struct{ med, p99 float64 }
		cells := make([]cell, len(cases)*len(sols))
		o.forEach(len(cells), func(k int) {
			c, s := cases[k/len(sols)], sols[k%len(sols)]
			cfg := fio.Config{Mode: c.mode, BlockSize: c.bs, QD: c.qd, RateIOPS: 10000,
				Warmup: warm, Duration: dur}
			r := runFio(o, s.mk, cfg, 1)
			cells[k] = cell{float64(r.Lat.Median()) / 1e3, float64(r.Lat.P99()) / 1e3}
		})
		for ci, c := range cases {
			var medCells, p99Cells []float64
			for si := range sols {
				medCells = append(medCells, cells[ci*len(sols)+si].med)
				p99Cells = append(p99Cells, cells[ci*len(sols)+si].p99)
			}
			label := fmt.Sprintf("bs=%s %v qd=%d", bsName(c.bs), c.mode, c.qd)
			med.Add(label, medCells...)
			p99.Add(label, p99Cells...)
		}
		return []*Table{med, p99}
	})

	register("fig5", "NVMetro scalability with VM count (shared router worker)", func(o Options) []*Table {
		t := &Table{ID: "fig5", Title: "total throughput vs number of VMs", Unit: "kIOPS"}
		vmCounts := []int{1, 2, 4, 8}
		modes := []fio.Mode{fio.RandRead, fio.RandWrite, fio.RandRW}
		qds := []int{1, 4, 32, 128}
		if o.Quick {
			vmCounts = []int{1, 4}
			modes = []fio.Mode{fio.RandRead}
			qds = []int{1, 32}
		}
		for _, n := range vmCounts {
			t.Cols = append(t.Cols, fmt.Sprintf("%d VMs", n))
		}
		warm, dur := o.windows()
		type row struct {
			m  fio.Mode
			qd int
		}
		var rows []row
		for _, m := range modes {
			for _, qd := range qds {
				rows = append(rows, row{m, qd})
			}
		}
		cells := make([]float64, len(rows)*len(vmCounts))
		o.forEach(len(cells), func(k int) {
			rw, n := rows[k/len(vmCounts)], vmCounts[k%len(vmCounts)]
			cfg := fio.Config{Mode: rw.m, BlockSize: 512, QD: rw.qd, Warmup: warm, Duration: dur}
			cells[k] = runFioScaled(o, n, cfg).KIOPS()
		})
		for ri, rw := range rows {
			t.Add(fmt.Sprintf("%v qd=%d", rw.m, rw.qd), cells[ri*len(vmCounts):(ri+1)*len(vmCounts)]...)
		}
		return []*Table{t}
	})

	register("fig6", "YCSB throughput per workload, basic solutions", func(o Options) []*Table {
		return []*Table{ycsbTable(o, "fig6", "YCSB on RocksDB-equivalent, basic solutions", basicSolutions())}
	})

	register("fig7", "Disk encryption evaluations with fio", func(o Options) []*Table {
		tp, _ := fig7Pair(o)
		return []*Table{tp}
	})

	register("fig8", "Disk encryption evaluations with YCSB", func(o Options) []*Table {
		return []*Table{ycsbTable(o, "fig8", "YCSB with disk encryption", encSolutions())}
	})

	register("fig9", "Disk replication evaluations with fio", func(o Options) []*Table {
		tp, _ := fig9Pair(o)
		return []*Table{tp}
	})

	register("fig10", "Disk replication evaluations with YCSB", func(o Options) []*Table {
		return []*Table{ycsbTable(o, "fig10", "YCSB with disk replication", repSolutions())}
	})

	register("fig11", "CPU consumption of fio with basic evaluation", func(o Options) []*Table {
		_, cpu := fig3Pair(o)
		return []*Table{cpu}
	})

	register("fig12", "CPU consumption of fio with disk encryption", func(o Options) []*Table {
		_, cpu := fig7Pair(o)
		return []*Table{cpu}
	})

	register("fig13", "CPU consumption of fio with disk replication", func(o Options) []*Table {
		_, cpu := fig9Pair(o)
		return []*Table{cpu}
	})
}
