package harness

import (
	"fmt"
	"hash/crc32"

	"nvmetro/internal/device"
	"nvmetro/internal/fault"
	"nvmetro/internal/fio"
	"nvmetro/internal/integrity"
	"nvmetro/internal/metrics"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

// The scrub experiment injects each silent-corruption kind below the
// device model of a PI-protected, replicated NVMetro stack and measures
// the integrity subsystem end to end: every corruption must be caught at
// a verifying boundary (never served to the guest as an OK completion),
// the background scrubber must repair damaged primary blocks from the
// clean mirror leg until the protected content of both stores is
// CRC-identical, and — with no replica to repair from — the damage must
// be quarantined so guest reads fail with an honest media error. A
// healthy scrub-on run against the scrub-off baseline bounds the
// foreground p99 cost of scrubbing.
func init() {
	register("scrub", "Scrub: silent-corruption detection, replica repair, quarantine", func(o Options) []*Table {
		return []*Table{scrubTable(o)}
	})
}

// The corruption-landing region: written exactly once and read exactly
// once by a directed guest program, far above the fio job region, so
// injected damage is never healed by a foreground rewrite and every
// cell's corruption trace is deterministic.
const (
	scrubWorkSet     = 4 << 20          // fio footprint, blocks [0, 8192)
	corruptBase      = (16 << 20) / 512 // first block of the directed region
	corruptOps       = 256              // directed 4 KiB writes, then reads
	corruptIOBlocks  = 8                // 4 KiB in 512 B device blocks
	corruptEndBlocks = corruptBase + corruptOps*corruptIOBlocks
)

// scrubPlan arms one corruption kind with a finite budget. Rates are per
// eligible store command; the directed phase issues corruptOps of each
// class, so the budget is always spent there (deterministically placed),
// never against the later fio window.
func scrubPlan(o Options, kind fault.Kind) *fault.Plan {
	p := fault.NewPlan(o.Seed)
	switch kind {
	case fault.BitRot:
		return p.WithBitRot(0.05, 4)
	case fault.TornWrite:
		return p.WithTornWrites(0.05, 4)
	case fault.MisdirectedWrite:
		return p.WithMisdirectedWrites(0.05, 4)
	case fault.LostWrite:
		return p.WithLostWrites(0.05, 4)
	}
	return p
}

// scrubCfg is the foreground workload: a mixed read/write zipf pattern so
// writes keep stamping PI while reads exercise the guest-boundary verify.
func scrubCfg(o Options) fio.Config {
	warm, dur := o.windows()
	return fio.Config{
		Mode: fio.RandRW, BlockSize: 4096, QD: 8,
		Warmup: warm, Duration: dur,
		WorkSet: scrubWorkSet, Zipf: 1.2,
	}
}

// scrubRun is one cell's outcome.
type scrubRun struct {
	res      fio.Result // foreground window (scrub active, corruption present)
	counters metrics.CounterSet
	drained  bool
	injected uint64  // corruptions the store actually injected
	phaseErr uint64  // directed-phase reads failed (guard caught rot in flight)
	detectUs float64 // first scrub-confirmed detection, µs after scrub start
	quarBlks uint64  // blocks quarantined at the end
	auditBad uint64  // stamped, unquarantined blocks failing PI at the end
	tailErr  uint64  // directed re-reads of the corrupt region that failed
	mirrorOK bool    // replica cells: protected content CRC-identical
	scr      *integrity.Scrubber
}

// scrubConfig returns the scrub policy for the harness: ~400 MB/s of
// effective bandwidth so passes over the stamped extents finish well
// inside the run, with short pass intervals.
func scrubConfig() integrity.ScrubConfig {
	cfg := integrity.DefaultScrubConfig()
	cfg.Rate = 400e6 * qos.DefaultClassCost(qos.ClassScavenger)
	cfg.Interval = sim.Millisecond
	return cfg
}

// driveGuest runs fn as a guest program and drives the simulation until
// it finishes.
func driveGuest(env *sim.Env, name string, fn func(p *sim.Proc)) {
	done := false
	env.Go(name, func(p *sim.Proc) {
		fn(p)
		done = true
	})
	deadline := env.Now().Add(2 * sim.Second)
	for !done && env.Now() < deadline {
		env.RunUntil(env.Now().Add(sim.Millisecond))
	}
	if !done {
		panic("harness: scrub guest phase did not finish")
	}
}

// corruptPattern is the directed-phase payload for op i: nonzero and
// distinct per op, so torn and lost writes always leave a detectable
// mismatch against the stamped expectation.
func corruptPattern(i int) []byte {
	buf := make([]byte, corruptIOBlocks*512)
	for k := range buf {
		buf[k] = byte(k*31 + i*7 + 11)
	}
	return buf
}

// stampedCRC fingerprints a store's PI-protected content: the CRC over
// every stamped block in LBA order. Unstamped blocks never traversed the
// mediation point, so they carry no expectation to converge on.
func stampedCRC(dom *integrity.Domain, st device.Store) uint32 {
	h := crc32.NewIEEE()
	blk := make([]byte, 512)
	for _, r := range dom.StampedRanges() {
		for i := uint64(0); i < r.Blocks; i++ {
			st.ReadBlocks(r.LBA+i, blk)
			h.Write(blk)
		}
	}
	return h.Sum32()
}

// runScrub builds a PI-protected stack (replicated when replica is set)
// over a store wrapped with the given corruption plan (nil = healthy),
// lands the corruption with the directed phase, runs the foreground
// workload with the scrubber in continuous mode when scrubOn, then
// drives scrub/resync to a fixpoint and audits the result.
func runScrub(o Options, plan *fault.Plan, replica, scrubOn bool) scrubRun {
	store := device.NewMemStore(512)
	var backing device.Store = store
	var cstore *integrity.CorruptingStore
	if plan != nil {
		cstore = integrity.NewCorruptingStore(store, plan, "store", 512, corruptEndBlocks)
		backing = cstore
	}
	env, h := newBed(o, backing)
	defer env.Close()
	v := h.NewVM(4, 512<<20)

	sol := stack.NewNVMetro(h)
	var rstore *device.MemStore
	if replica {
		rstore = device.NewMemStore(512)
		remote := stack.NewRemoteHost(env, 4, h.Params.Device, rstore)
		sol = sol.WithReplication(remote.Secondary())
	}
	sol = sol.WithIntegrity(scrubConfig())
	disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))
	vc := sol.ControllerFor(v)
	scr := sol.ScrubberFor(v)
	dom := sol.IntegrityDomainFor(v)
	rs := sol.ResyncerFor(v)
	rep := sol.ReplicatorFor(v)

	out := scrubRun{mirrorOK: true, scr: scr}

	// Directed phase: write then read the corrupt region once each. The
	// plan's corruption budget is spent entirely here; a read that fails
	// is the guard catching rot in flight (honest error, not wrong data).
	sweep := func(p *sim.Proc, op vm.Op, errs *uint64) {
		vcpu := v.VCPU(0)
		base, pages, err := v.Mem.AllocBuffer(corruptIOBlocks * 512)
		if err != nil {
			panic(err)
		}
		for i := 0; i < corruptOps; i++ {
			if op == vm.OpWrite {
				v.Mem.WriteAt(corruptPattern(i), base)
			}
			r := &vm.Req{
				Op: op, LBA: corruptBase + uint64(i*corruptIOBlocks),
				Blocks: corruptIOBlocks, Buf: base, BufPages: pages,
			}
			if st := vm.SubmitAndWait(p, disk, vcpu, r); !st.OK() {
				if op == vm.OpWrite {
					panic(fmt.Sprintf("scrub: directed write @%d: %v", r.LBA, st))
				}
				*errs++
			}
		}
	}
	driveGuest(env, "scrub-corrupt", func(p *sim.Proc) {
		sweep(p, vm.OpWrite, nil)
		sweep(p, vm.OpRead, &out.phaseErr)
	})

	t0 := env.Now()
	if scrubOn {
		scr.Start()
	}
	cfg := scrubCfg(o)
	var targets []fio.Target
	for i := 0; i < 4; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out.res = fio.Run(env, h.CPU, targets, cfg)
	out.drained = drainOutstanding(env, vc.Outstanding)

	// Drive scrub (and resync) to a fixpoint: repeat passes until one
	// finds no new suspects, then require the mirror drained to InSync.
	if scrubOn {
		scr.Stop()
		deadline := env.Now().Add(2 * sim.Second)
		step := func() { env.RunUntil(env.Now().Add(100 * sim.Microsecond)) }
		last, stable := scr.Suspects, 0
		for stable < 2 && env.Now() < deadline {
			target := scr.Passes + 1
			scr.Trigger()
			for scr.Passes < target && env.Now() < deadline {
				step()
			}
			if rs != nil {
				for rs.State() != storfn.StateInSync && env.Now() < deadline {
					if rs.State() == storfn.StateDegraded {
						rs.Trigger()
					}
					step()
				}
			}
			if scr.Suspects == last {
				stable++
			} else {
				last, stable = scr.Suspects, 0
			}
		}
	}

	// Guest-visible audit: re-read the whole corrupt region. Repaired
	// blocks must serve clean; quarantined blocks must fail honestly.
	driveGuest(env, "scrub-audit", func(p *sim.Proc) {
		sweep(p, vm.OpRead, &out.tailErr)
	})
	out.drained = out.drained && drainOutstanding(env, vc.Outstanding)

	// Content audit against the PI table: a stamped block must either
	// verify or be quarantined — anything else is servable wrong data.
	blk := make([]byte, 512)
	for _, r := range dom.StampedRanges() {
		for i := uint64(0); i < r.Blocks; i++ {
			lba := r.LBA + i
			store.ReadBlocks(lba, blk)
			if !dom.VerifyBlock(lba, blk) && !dom.Quarantined(lba, 1) {
				out.auditBad++
			}
		}
	}
	out.quarBlks = dom.QuarantinedBlocks()
	if cstore != nil {
		out.injected = cstore.BitRots + cstore.TornWrites + cstore.Misdirected + cstore.LostWrites
	}
	if scr.Detected {
		out.detectUs = float64(scr.FirstDetectAt.Sub(t0)) / float64(sim.Microsecond)
	}
	if replica {
		out.mirrorOK = stampedCRC(dom, store) == stampedCRC(dom, rstore)
	}

	dom.Collect(&out.counters)
	scr.Collect(&out.counters)
	collectRouter(&out.counters, vc.Router())
	out.counters.Add("rt.guard_errors", vc.Router().GuardErrors)
	out.counters.Add("rt.quarantined_reads", vc.Router().QuarantinedReads)
	if rep != nil {
		collectReplicator(&out.counters, rep)
		out.counters.Add("rep.guard_errors", rep.GuardErrors)
	}
	if rs != nil {
		rs.Collect(&out.counters)
	}
	out.counters.Add("fio.errors", out.res.Errors)
	out.counters.Add("audit.phase_errors", out.phaseErr)
	out.counters.Add("audit.tail_errors", out.tailErr)
	return out
}

// scrubCells returns the labeled corruption grid.
type scrubCell struct {
	name    string
	kind    fault.Kind
	replica bool
}

func scrubCells() []scrubCell {
	return []scrubCell{
		{"bitrot", fault.BitRot, true},
		{"torn-write", fault.TornWrite, true},
		{"misdirected", fault.MisdirectedWrite, true},
		{"lost-write", fault.LostWrite, true},
		{"bitrot no-replica", fault.BitRot, false},
	}
}

// scrubOK applies the per-cell acceptance invariants.
func scrubOK(c scrubCell, sr scrubRun) bool {
	ok := sr.drained && sr.injected > 0 && sr.auditBad == 0 && sr.scr.Detected
	if c.replica {
		// Repairable: everything converged, the protected content is
		// CRC-identical on both legs and the guest audit sweep served
		// every corrupt-region block without error.
		ok = ok && sr.mirrorOK && sr.quarBlks == 0 && sr.tailErr == 0 &&
			sr.scr.RepairedBlocks > 0
	} else {
		// Unrepairable: the damage is quarantined and the audit sweep saw
		// honest guest-visible media errors on it.
		ok = ok && sr.quarBlks > 0 && sr.tailErr > 0 &&
			sr.counters.Get("rt.quarantined_reads") > 0
	}
	return ok
}

// scrubTable runs the grid: a scrub-off and scrub-on healthy pair (the
// foreground-cost bound), then every corruption kind.
func scrubTable(o Options) *Table {
	t := &Table{
		ID:    "scrub",
		Title: "Scrub: end-to-end integrity — detection, replica repair, quarantine",
		Cols:  []string{"kIOPS", "p99us", "p99x", "inj", "detect", "detect_us", "repaired", "quar", "audit_bad", "tail_err", "ok"},
	}
	// Shards: the two healthy runs plus one per corruption kind, all
	// independent; rows assemble in the fixed serial order below.
	g := o.group()
	basePtr := shard(g, func() scrubRun { return runScrub(o, nil, true, false) })
	onPtr := shard(g, func() scrubRun { return runScrub(o, nil, true, true) })
	cells := scrubCells()
	runs := make([]*scrubRun, len(cells))
	for i, c := range cells {
		c := c
		runs[i] = shard(g, func() scrubRun { return runScrub(o, scrubPlan(o, c.kind), c.replica, true) })
	}
	g.Run()
	base, on := *basePtr, *onPtr
	p99x := func(r scrubRun) float64 {
		if b := base.res.Lat.P99(); b > 0 {
			return float64(r.res.Lat.P99()) / float64(b)
		}
		return 0
	}
	healthyOK := func(r scrubRun) float64 {
		if r.drained && r.mirrorOK && r.auditBad == 0 && r.res.Errors == 0 &&
			r.phaseErr == 0 && r.tailErr == 0 {
			return 1
		}
		return 0
	}
	t.Add("healthy scrub-off",
		base.res.KIOPS(), float64(base.res.Lat.P99())/1e3, 1, 0, 0, 0, 0, 0,
		float64(base.auditBad), float64(base.tailErr), healthyOK(base))
	t.Add("healthy scrub-on",
		on.res.KIOPS(), float64(on.res.Lat.P99())/1e3, p99x(on), 0, 0, 0,
		float64(on.scr.RepairedBlocks), float64(on.quarBlks),
		float64(on.auditBad), float64(on.tailErr), healthyOK(on))
	for i, c := range cells {
		sr := *runs[i]
		ok := 0.0
		if scrubOK(c, sr) {
			ok = 1
		}
		t.Add(c.name,
			sr.res.KIOPS(),
			float64(sr.res.Lat.P99())/1e3,
			p99x(sr),
			float64(sr.injected),
			float64(sr.scr.DetectedBlocks+sr.scr.ReplicaBad),
			sr.detectUs,
			float64(sr.scr.RepairedBlocks),
			float64(sr.quarBlks),
			float64(sr.auditBad),
			float64(sr.tailErr),
			ok)
	}
	t.Notes = "p99x vs healthy scrub-off same-seed baseline; ok = drained, detected, audit-clean, and (replica) repaired to CRC-identical protected content with an error-free guest audit / (no-replica) quarantined with guest-visible media errors"
	return t
}
