package harness

import (
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/fault"
	"nvmetro/internal/fio"
	"nvmetro/internal/integrity"
	"nvmetro/internal/qos"
	"nvmetro/internal/stack"
)

// End-to-end acceptance for the integrity subsystem: every injected
// silent-corruption kind must be (a) detected — no wrong-data completion
// ever reaches the guest as an OK status, (b) repaired from the in-sync
// replica until the protected content of both legs is CRC-identical, or
// (c) quarantined when no replica exists, with guest reads of the damage
// failing honestly; and the foreground p99 under active scrub must stay
// bounded against the same-seed no-scrub baseline.
func TestScrubE2E(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	base := runScrub(o, nil, true, false)
	if !base.drained || base.auditBad != 0 || base.res.Errors != 0 {
		t.Fatalf("healthy baseline broken: drained=%v auditBad=%d errors=%d",
			base.drained, base.auditBad, base.res.Errors)
	}

	on := runScrub(o, nil, true, true)
	if !on.drained || on.auditBad != 0 || on.res.Errors != 0 || on.tailErr != 0 {
		t.Fatalf("healthy scrub-on run broken: drained=%v auditBad=%d errors=%d tailErr=%d",
			on.drained, on.auditBad, on.res.Errors, on.tailErr)
	}
	if on.scr.Passes == 0 || on.scr.ScrubbedBlocks == 0 {
		t.Fatalf("scrubber never ran: passes=%d scrubbed=%d", on.scr.Passes, on.scr.ScrubbedBlocks)
	}
	if !on.mirrorOK {
		t.Fatal("healthy scrub-on run diverged the mirror")
	}
	// Foreground cost bound: p99 under scrub within 1.5x of no-scrub.
	if b := base.res.Lat.P99(); b > 0 && float64(on.res.Lat.P99()) > 1.5*float64(b) {
		t.Fatalf("scrub foreground cost unbounded: p99 %d vs baseline %d",
			on.res.Lat.P99(), base.res.Lat.P99())
	}

	for _, c := range scrubCells() {
		sr := runScrub(o, scrubPlan(o, c.kind), c.replica, true)
		if sr.injected == 0 {
			t.Fatalf("%s: plan injected nothing", c.name)
		}
		if !sr.drained {
			t.Fatalf("%s: guest commands stuck in flight", c.name)
		}
		// Detection: the scrubber confirmed damage, and no stamped,
		// unquarantined block fails PI at the end — wrong data is never
		// left servable.
		if !sr.scr.Detected {
			t.Fatalf("%s: corruption never detected: %s", c.name, sr.counters.String())
		}
		if sr.auditBad != 0 {
			t.Fatalf("%s: %d servable blocks fail PI after scrub: %s",
				c.name, sr.auditBad, sr.counters.String())
		}
		if c.replica {
			// Repairable: converged to CRC-identical protected content and
			// the guest audit sweep of the damaged region is error-free.
			if sr.scr.RepairedBlocks == 0 {
				t.Fatalf("%s: nothing repaired: %s", c.name, sr.counters.String())
			}
			if !sr.mirrorOK {
				t.Fatalf("%s: mirror legs not CRC-identical after repair", c.name)
			}
			if sr.quarBlks != 0 || sr.tailErr != 0 {
				t.Fatalf("%s: repairable damage left quarantined (quar=%d tailErr=%d)",
					c.name, sr.quarBlks, sr.tailErr)
			}
		} else {
			// Unrepairable: quarantined, and guest reads of the damage fail
			// with an honest media error instead of returning wrong bytes.
			if sr.quarBlks == 0 {
				t.Fatalf("%s: unrepairable damage not quarantined: %s", c.name, sr.counters.String())
			}
			if sr.tailErr == 0 || sr.counters.Get("rt.quarantined_reads") == 0 {
				t.Fatalf("%s: quarantined reads not guest-visible (tailErr=%d quar_reads=%d)",
					c.name, sr.tailErr, sr.counters.Get("rt.quarantined_reads"))
			}
		}
	}
}

// Same seed, same cell, byte-identical outcome: the corruption draw, the
// scrub schedule, and every counter must reproduce exactly.
func TestScrubDeterminism(t *testing.T) {
	o := Options{Quick: true, Seed: 7}
	run := func() scrubRun { return runScrub(o, scrubPlan(o, fault.MisdirectedWrite), true, true) }
	a, b := run(), run()
	if !a.counters.Equal(&b.counters) {
		t.Fatalf("same-seed runs diverge:\n%s\nvs\n%s", a.counters.String(), b.counters.String())
	}
	if a.injected != b.injected || a.detectUs != b.detectUs || a.quarBlks != b.quarBlks {
		t.Fatalf("same-seed scalar outcomes diverge: %+v vs %+v", a, b)
	}
}

// Satellite: scrubber pacing must not break a tenant's QoS contract. A
// rate-contracted tenant saturating its cap keeps its delivered IOPS and
// its tail while an aggressively-paced scrub runs over its stamped
// extents on the same device.
func TestScrubQoSContract(t *testing.T) {
	const contractIOPS = 50000
	o := Options{Quick: true, Seed: 1}

	run := func(scrubOn bool) (fio.Result, *integrity.Scrubber) {
		env, h := newBed(o, device.NewMemStore(512))
		defer env.Close()
		v := h.NewVM(4, 512<<20)
		sol := stack.NewNVMetro(h).WithQoS(qos.Config{}).WithIntegrity(scrubConfig())
		disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))
		sol.SetQoS(v, qos.TenantConfig{IOPS: contractIOPS, BurstOps: 64})
		vc := sol.ControllerFor(v)
		scr := sol.ScrubberFor(v)
		if scrubOn {
			scr.Start()
		}
		var targets []fio.Target
		for i := 0; i < 4; i++ {
			targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
		}
		res := fio.Run(env, h.CPU, targets, scrubCfg(o))
		scr.Stop()
		if !drainOutstanding(env, vc.Outstanding) {
			t.Fatalf("scrubOn=%v: guest commands stuck in flight", scrubOn)
		}
		return res, scr
	}

	base, _ := run(false)
	under, scr := run(true)
	if scr.Passes == 0 && scr.ScrubbedBlocks == 0 {
		t.Fatal("scrubber made no progress during the window")
	}
	// The tenant saturates its contract in both runs...
	for _, r := range []struct {
		name string
		res  fio.Result
	}{{"no-scrub", base}, {"under-scrub", under}} {
		if got := r.res.KIOPS() * 1e3; got < 0.9*contractIOPS || got > 1.1*contractIOPS {
			t.Fatalf("%s: delivered %.0f IOPS, contract %d", r.name, got, contractIOPS)
		}
	}
	// ...and active scrub does not degrade its contracted service: IOPS
	// within 5% and p99 within 1.5x of the scrub-off run.
	if under.KIOPS() < 0.95*base.KIOPS() {
		t.Fatalf("scrub stole contracted throughput: %.1f vs %.1f kIOPS", under.KIOPS(), base.KIOPS())
	}
	if b := base.Lat.P99(); b > 0 && float64(under.Lat.P99()) > 1.5*float64(b) {
		t.Fatalf("scrub blew the tenant tail: p99 %d vs %d", under.Lat.P99(), b)
	}
}
