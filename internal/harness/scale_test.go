package harness

import (
	"strconv"
	"strings"
	"testing"
)

// runScaleQuick renders the quick-mode scale table for a worker count.
func runScaleQuick(t *testing.T, workers int) *Table {
	t.Helper()
	e, ok := Get("scale")
	if !ok {
		t.Fatal("scale experiment not registered")
	}
	tabs := e.Run(Options{Quick: true, Seed: 1, Workers: workers})
	if len(tabs) != 1 {
		t.Fatalf("scale produced %d tables, want 1", len(tabs))
	}
	return tabs[0]
}

// TestScaleGoldenAnyWorkers: the scale CSV is a pure function of the seed —
// the harness worker count (how many sweep cells run concurrently on the
// real machine) must not leak into the simulated results.
func TestScaleGoldenAnyWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep; skipped in -short")
	}
	base := runScaleQuick(t, 1).CSV()
	for _, w := range []int{2, 8} {
		if got := runScaleQuick(t, w).CSV(); got != base {
			t.Errorf("scale CSV diverges at -workers %d:\n--- workers=%d ---\n%s--- workers=1 ---\n%s",
				w, w, got, base)
		}
	}
}

// scaleCol extracts a named column from the scale table as floats, keyed by
// the row's VM count parsed from its "N=%d" config label.
func scaleCol(t *testing.T, tbl *Table, name string) map[int]float64 {
	t.Helper()
	col := -1
	for i, c := range tbl.Cols {
		if c == name {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("column %q not in %v", name, tbl.Cols)
	}
	out := map[int]float64{}
	for _, row := range tbl.Rows {
		n, err := strconv.Atoi(strings.TrimPrefix(row.Label, "N="))
		if err != nil {
			t.Fatalf("row label %q: %v", row.Label, err)
		}
		out[n] = row.Cells[col]
	}
	return out
}

// TestScaleShape checks the deliverable's acceptance surface on the quick
// sweep: every cell passes its own ok predicate, aggregate IOPS grows
// near-linearly with the fleet, and p99 at the largest fleet stays within
// 1.5x of the single-VM point.
func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep; skipped in -short")
	}
	tbl := runScaleQuick(t, 0)
	oks := scaleCol(t, tbl, "ok")
	kiops := scaleCol(t, tbl, "kiops")
	p99 := scaleCol(t, tbl, "p99_us")
	episodes := scaleCol(t, tbl, "episode")

	sizes := make([]int, 0, len(oks))
	maxN, epN := 0, 0
	for n := range oks {
		sizes = append(sizes, n)
		if n > maxN {
			maxN = n
		}
	}
	for n, ok := range oks {
		if ok != 1 {
			t.Errorf("N=%d failed its ok predicate", n)
		}
		if episodes[n] == 1 {
			epN = n
		}
	}
	if epN == 0 {
		t.Error("no row ran the promotion/demotion episode")
	}

	// Near-linear: per-VM throughput at the largest fleet holds at least
	// 70% of the single-VM point (the paper's near-linear bar; measured
	// headroom is ~84% even at 1024 VMs in full mode).
	perVM1 := kiops[1]
	perVMMax := kiops[maxN] / float64(maxN)
	if perVMMax < 0.70*perVM1 {
		t.Errorf("aggregate IOPS not near-linear: %.2f kiops/VM at N=%d vs %.2f at N=1",
			perVMMax, maxN, perVM1)
	}

	// p99 flatness across the sweep, not just the endpoint.
	for _, n := range sizes {
		if p99[n] > 1.5*p99[1] {
			t.Errorf("p99 at N=%d is %.1fus, more than 1.5x the 1-VM %.1fus",
				n, p99[n], p99[1])
		}
	}
}
