package harness

import (
	"testing"

	"nvmetro/internal/fio"
	"nvmetro/internal/sim"
	"nvmetro/internal/storfn"
)

// End-to-end acceptance for the resync engine: a full replication fio
// run through two fabric outages — the second landing while the resync
// drain from the first is still in flight — must converge to InSync
// with a CRC-identical secondary, zero guest-visible errors, zero
// leaked dirty regions, and a bit-identical counter trace across
// same-seed runs.
func TestResyncE2EOutageMidResync(t *testing.T) {
	o := Options{Quick: true, Seed: 7}
	cfg := faultCfg(o)
	cfg.Mode = fio.RandWrite
	warm, _ := o.windows()
	at := func(d sim.Duration) sim.Time { return sim.Time(0).Add(warm + d) }
	rcfg := storfn.DefaultResyncConfig()
	rcfg.Rate = 20e6 // slow drain so the second outage lands mid-resync
	outages := []outageSpec{
		{at(sim.Millisecond), 3 * sim.Millisecond},
		{at(6 * sim.Millisecond), 2 * sim.Millisecond},
	}

	a := runResync(o, outages, rcfg, cfg, 4)
	if !a.drained {
		t.Fatal("guest commands stuck in flight after the run (hang)")
	}
	if !a.converged {
		t.Fatalf("mirror did not converge to InSync: %s", a.counters.String())
	}
	if a.finalDirty != 0 {
		t.Fatalf("leaked %d dirty blocks after convergence: %s", a.finalDirty, a.counters.String())
	}
	if !a.mirrorMatch {
		t.Fatalf("secondary not bit-identical after resync: %s", a.counters.String())
	}
	// Outages are secondary-leg-only events: the guest must see none of it.
	if a.res.Errors != 0 || a.counters.Get("fio.errors") != 0 {
		t.Fatalf("guest saw errors despite degraded mode: fio=%d", a.res.Errors)
	}
	if a.counters.Get("rep.degraded") == 0 {
		t.Fatalf("outages produced no degraded writes: %s", a.counters.String())
	}
	if a.counters.Get("rs.resynced_blocks") == 0 {
		t.Fatalf("resync copied nothing: %s", a.counters.String())
	}
	// The second outage must interrupt the drain: either the copy loop
	// aborted back to Degraded or the state machine re-entered Resyncing.
	if a.counters.Get("rs.aborts") == 0 && a.counters.Get("rs.to_resyncing") < 2 {
		t.Fatalf("second outage did not interrupt the resync: %s", a.counters.String())
	}

	b := runResync(o, outages, rcfg, cfg, 4)
	if !a.counters.Equal(&b.counters) {
		t.Fatalf("same seed produced different resync traces:\n%s\n%s",
			a.counters.String(), b.counters.String())
	}
	if a.res.Ops != b.res.Ops {
		t.Fatalf("same seed produced different op counts: %d/%d", a.res.Ops, b.res.Ops)
	}
}
