package harness

import (
	"testing"
)

// End-to-end acceptance for the supervision subsystem: every storage
// function under both a mid-workload crash and a wedge must (a) lose no
// completion — the run drains and no command is misattributed across UIF
// generations, (b) be detected by the watchdog without self-reporting,
// (c) reconcile its stranded in-flight commands per its declared policy,
// (d) keep the victim's tail latency bounded while degraded, and (e)
// reconverge to baseline throughput after the supervised restart.
func TestChaosE2E(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	for _, cell := range chaosCells(o) {
		base := cell.run(nil)
		if !base.drained {
			t.Fatalf("%s: healthy baseline did not drain", cell.name)
		}
		for _, f := range []struct {
			kind  string
			crash bool
		}{{"crash", true}, {"wedge", false}} {
			name := cell.name + " " + f.kind
			cr := cell.run(chaosPlan(o, f.crash))
			cs := &cr.counters
			sup := "sup." + cell.name + "."
			site := "fault.uif-" + cell.name + "."

			// The fault actually fired at the intended site.
			if cs.Get(site+"uif-crash")+cs.Get(site+"uif-wedge") == 0 {
				t.Fatalf("%s: plan injected nothing: %s", name, cs.String())
			}
			// No lost completions: every accepted guest command completed.
			if !cr.drained {
				t.Fatalf("%s: guest commands stuck in flight (lost completions)", name)
			}
			// External detection and supervised restart back to routed.
			if cs.Get(sup+"detections") == 0 {
				t.Fatalf("%s: watchdog never detected the failure: %s", name, cs.String())
			}
			if cs.Get(sup+"restarts") == 0 || !cr.routed {
				t.Fatalf("%s: function not restarted and promoted (restarts=%d routed=%v)",
					name, cs.Get(sup+"restarts"), cr.routed)
			}
			// Stranded commands were reconciled, not dropped.
			if cs.Get(sup+"reconciled_ok")+cs.Get(sup+"reconciled_err")+cs.Get(sup+"requeued") == 0 {
				t.Fatalf("%s: no in-flight commands reconciled: %s", name, cs.String())
			}
			// Bounded degradation: victim p99 within 5x of the healthy
			// same-seed baseline, throughput reconverged after restart.
			if b := base.res.Lat.P99(); b > 0 && cr.res.Lat.P99() > 5*b {
				t.Fatalf("%s: degraded p99 unbounded: %d vs baseline %d", name, cr.res.Lat.P99(), b)
			}
			if b := base.res.KIOPS(); b > 0 && cr.tail.KIOPS() < 0.7*b {
				t.Fatalf("%s: post-restart throughput did not reconverge: %.1f vs baseline %.1f",
					name, cr.tail.KIOPS(), b)
			}
			// Only the fail-stop encryptor may surface errors to the guest
			// (retryable NS-not-ready while degraded); cache and mirror
			// degradation are transparent.
			if cell.name != "encryptor" {
				if cs.Get("fio.errors") != 0 || cs.Get("rt.guest_errors") != 0 {
					t.Fatalf("%s: guest saw errors despite transparent degradation: fio=%d router=%d",
						name, cs.Get("fio.errors"), cs.Get("rt.guest_errors"))
				}
			}
			if !chaosOK(cell.name, cr) {
				t.Fatalf("%s: acceptance invariants failed: %s", name, cs.String())
			}
		}
	}
}

// The replication chaos cell must converge back to a bit-identical mirror
// even with the crash layered over fabric outages (resync in progress).
func TestChaosReplicationMirrorConverges(t *testing.T) {
	o := Options{Quick: true, Seed: 3}
	for _, crash := range []bool{true, false} {
		var cr chaosRun
		for _, cell := range chaosCells(o) {
			if cell.name == "replicator" {
				cr = cell.run(chaosPlan(o, crash))
			}
		}
		if !cr.converged {
			t.Fatalf("crash=%v: mirror did not drain to InSync: %s", crash, cr.counters.String())
		}
		if !cr.mirrorOK {
			t.Fatalf("crash=%v: primary and secondary stores diverged after convergence", crash)
		}
	}
}

// Same-seed chaos runs must produce identical counter traces: detection
// times, reconcile decisions, restart backoffs and fault draws are all on
// the deterministic simulation clock.
func TestChaosDeterminism(t *testing.T) {
	o := Options{Quick: true, Seed: 7}
	run := func(name string, crash bool) chaosRun {
		for _, cell := range chaosCells(o) {
			if cell.name == name {
				return cell.run(chaosPlan(o, crash))
			}
		}
		t.Fatalf("no cell %q", name)
		return chaosRun{}
	}
	for _, name := range []string{"cacher", "replicator"} {
		a := run(name, true)
		b := run(name, true)
		if !a.counters.Equal(&b.counters) {
			t.Fatalf("%s: same seed produced different chaos traces:\n%s\n%s",
				name, a.counters.String(), b.counters.String())
		}
		if a.res.Ops != b.res.Ops || a.res.Errors != b.res.Errors {
			t.Fatalf("%s: same seed produced different results: ops %d/%d errors %d/%d",
				name, a.res.Ops, b.res.Ops, a.res.Errors, b.res.Errors)
		}
	}
}
