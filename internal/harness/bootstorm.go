package harness

import (
	"encoding/binary"
	"fmt"
	"strings"

	"nvmetro/internal/cow"
	"nvmetro/internal/device"
	"nvmetro/internal/fio"
	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/vm"
)

// The bootstorm experiment is the snapshot/clone deliverable: N single-vCPU
// tenants boot simultaneously from clones of one sealed golden image and run
// the read-mostly boot profile (same guest offsets in every tenant, zipf hot
// set, a trickle of writes). Two provisioning regimes face off over the same
// total cache budget:
//
//   - shared: one golden image, one content-addressed chunk index, one
//     content cache of the full budget. One tenant's miss warms every other
//     tenant's reads; tenant writes CoW-break into private chunks.
//   - flat: every tenant gets its own full copy of the image with a private
//     index and a 1/N slice of the cache budget — the conventional
//     image-per-VM layout.
//
// Every cell runs with end-to-end integrity armed (PI stamped at the
// mediation point, verified at the guest boundary), so the table doubles as
// the proof that CoW indirection never surfaces wrong bytes: guard_bad must
// stay 0. After the storm each tenant writes a tenant-unique block and the
// clones are checkpointed, measuring divergence isolation (every clone's
// content CRC moves, the sealed base CRC does not) and cross-tenant dedup of
// the checkpointed state.
func init() {
	register("bootstorm", "Boot storm: N tenants cloned from one golden image, shared vs flat provisioning", func(o Options) []*Table {
		return []*Table{bootstormTable(o)}
	})
}

const (
	// bootImageBlocks is the golden image size in 512 B blocks (1 MiB quick
	// / 4 MiB full): small enough that the flat regime's N full copies stay
	// cheap, large enough to dwarf the per-tenant flat cache slice.
	bootImageBlocksQuick = 2048
	bootImageBlocksFull  = 8192
	// bootCacheChunks is the total content-cache budget in chunks, shared
	// by the whole tenant fleet (the flat regime splits it N ways).
	bootCacheChunks = 256
)

// bootPayload fills the golden image with per-chunk-distinct content (a
// repeating texture plus a unique header per 32 KiB chunk), so the sealed
// image dedups nothing against itself: dedup_hits counts honest
// cross-tenant sharing only, and unique_chunks counts real copies.
func bootPayload(blocks uint64) []byte {
	buf := make([]byte, blocks*512)
	for i := range buf {
		buf[i] = byte(i*131 + i>>9)
	}
	const chunkBytes = 64 * 512 // the cow layer's default chunking
	for c := 0; c*chunkBytes < len(buf); c++ {
		binary.LittleEndian.PutUint64(buf[c*chunkBytes:], uint64(c)^0x9e3779b97f4a7c15)
	}
	return buf
}

// bootstormRun is one cell's outcome.
type bootstormRun struct {
	res      fio.Result
	counters metrics.CounterSet
	hitRatio float64 // content-cache hits / lookups across all images

	cowBreaks   uint64 // shared chunks broken private by tenant writes
	cloneCopies uint64 // chunks copied while cloning (flat-cost claim: 0)
	cloneLayers int    // layer-chain length per fresh clone
	dedupHits   uint64 // index hits for already-present content
	uniqChunks  uint64 // distinct chunks across all images at the end

	divergent   int  // tenants whose content CRC left the golden CRC
	distinctCRC int  // distinct tenant content CRCs after divergence writes
	baseOK      bool // sealed base layer and golden content CRCs unchanged
	guardBad    uint64
	drained     bool
}

// runBootstorm builds the storm testbed: one host with a guest core per
// tenant, the golden image(s), N cloned namespaces, the boot-profile fio
// phase, a per-tenant divergence write, and a checkpoint of every clone.
// shards > 0 routes the whole fleet through the per-core sharded dispatch
// subsystem (one core per shard) instead of a router per tenant; zero
// keeps the original layout, byte-identical to the pre-shard goldens.
func runBootstorm(o Options, vms int, imgBlocks, cacheChunks uint64, shared bool, shards int) bootstormRun {
	env := sim.New(o.Seed + 1)
	defer env.Close()
	p := stack.DefaultParams()
	h := stack.NewHost(env, vms+8+shards, vms, p, device.NullStore{})

	payload := bootPayload(imgBlocks)
	newImage := func(chunks uint64) *stack.GoldenImage {
		img := stack.NewGoldenImage(h, imgBlocks, chunks)
		img.Master().WriteBlocks(0, payload)
		img.Seal()
		return img
	}

	var (
		images []*stack.GoldenImage
		sols   []*stack.NVMetro
		guests []*vm.VM
		disks  []vm.Disk
		stores []*cow.Store
	)
	mkSol := func(img *stack.GoldenImage) *stack.NVMetro {
		sol := stack.NewNVMetro(h)
		if shards > 0 {
			sol = stack.NewNVMetroSharded(h, shards)
		}
		return sol.WithIntegrity(scrubConfig()).WithSnapshots(img)
	}
	if shared {
		img := newImage(cacheChunks)
		images = append(images, img)
		sol := mkSol(img)
		for i := 0; i < vms; i++ {
			v := h.NewVM(1, 16<<20)
			disks = append(disks, sol.CloneFrom(v))
			guests = append(guests, v)
			sols = append(sols, sol)
			stores = append(stores, sol.CloneStoreFor(v))
		}
	} else {
		per := cacheChunks / uint64(vms)
		if per == 0 {
			per = 1
		}
		for i := 0; i < vms; i++ {
			img := newImage(per)
			images = append(images, img)
			sol := mkSol(img)
			v := h.NewVM(1, 16<<20)
			disks = append(disks, sol.CloneFrom(v))
			guests = append(guests, v)
			sols = append(sols, sol)
			stores = append(stores, sol.CloneStoreFor(v))
		}
	}

	out := bootstormRun{cloneLayers: len(stores[0].Layers())}
	for _, st := range stores {
		out.cloneCopies += st.ChunkCopies
	}
	goldBase := make([]uint32, len(images))
	goldContent := make([]uint32, len(images))
	for i, img := range images {
		goldBase[i] = img.BaseCRC()
		goldContent[i] = img.ContentCRC()
	}

	// The storm: every tenant walks the same guest offsets of its clone.
	warm, dur := o.windows()
	cfg := fio.BootProfile(warm, dur)
	cfg.WorkSet = imgBlocks * 512
	targets := make([]fio.Target, vms)
	for i := range targets {
		targets[i] = fio.Target{Disk: disks[i], VM: guests[i], VCPU: guests[i].VCPU(0)}
	}
	out.res = fio.Run(env, h.CPU, targets, cfg)
	out.drained = true
	for i, sol := range sols {
		out.drained = out.drained && drainOutstanding(env, sol.ControllerFor(guests[i]).Outstanding)
	}

	// Divergence phase: each tenant writes one tenant-unique 4 KiB block
	// through its guest path, then its clone is checkpointed — the content
	// CRCs must fan out while every sealed golden CRC stays put.
	driveGuest(env, "bootstorm-diverge", func(pr *sim.Proc) {
		for i := 0; i < vms; i++ {
			v := guests[i]
			base, pages, err := v.Mem.AllocBuffer(4096)
			if err != nil {
				panic(err)
			}
			mine := make([]byte, 4096)
			for k := range mine {
				mine[k] = byte(k*7 + i*13 + 1)
			}
			v.Mem.WriteAt(mine, base)
			r := &vm.Req{Op: vm.OpWrite, LBA: uint64(8 * (i % 64)), Blocks: 8, Buf: base, BufPages: pages}
			if st := vm.SubmitAndWait(pr, disks[i], v.VCPU(0), r); !st.OK() {
				panic(fmt.Sprintf("bootstorm: divergence write vm%d: %v", i, st))
			}
		}
	})
	for i, sol := range sols {
		out.drained = out.drained && drainOutstanding(env, sol.ControllerFor(guests[i]).Outstanding)
	}

	seen := make(map[uint32]bool)
	for _, st := range stores {
		st.Snapshot() // checkpoint: private chunks enter the content index
		crc := st.ContentCRC()
		if !seen[crc] {
			seen[crc] = true
		}
		if crc != goldContent[0] && st.DivergenceCRC() != 0 {
			out.divergent++
		}
		out.cowBreaks += st.CowBreaks
	}
	out.distinctCRC = len(seen)

	out.baseOK = true
	for i, img := range images {
		out.baseOK = out.baseOK && img.BaseCRC() == goldBase[i] && img.ContentCRC() == goldContent[i]
	}

	// Counter roll-up: per-image index/cache counters, aggregate clone CoW
	// counters, and every PI guard across the fleet.
	var hits, lookups uint64
	for _, img := range images {
		var ic metrics.CounterSet
		img.Collect(&ic)
		hits += ic.Get("cow.cache.hits")
		lookups += ic.Get("cow.cache.hits") + ic.Get("cow.cache.misses")
		out.uniqChunks += ic.Get("cow.index.chunks")
		out.dedupHits += ic.Get("cow.index.dedup_hits")
		out.counters.Merge(&ic)
	}
	if lookups > 0 {
		out.hitRatio = float64(hits) / float64(lookups)
	}
	var cs metrics.CounterSet
	for i, st := range stores {
		var sc metrics.CounterSet
		st.Collect("cow.clone.", &sc)
		cs.Merge(&sc)
		if dom := sols[i].IntegrityDomainFor(guests[i]); dom != nil {
			var dc metrics.CounterSet
			dom.Collect(&dc)
			for _, n := range dc.Names() {
				if strings.HasPrefix(n, "pi.") && strings.HasSuffix(n, ".bad") {
					out.guardBad += dc.Get(n)
				}
			}
			cs.Merge(&dc)
		}
	}
	out.counters.Merge(&cs)
	out.counters.Add("fio.errors", out.res.Errors)
	out.counters.Add("fio.ops", out.res.Ops)
	out.counters.Add("guard.bad", out.guardBad)
	return out
}

// bootstormOK is the cell acceptance predicate: everything drained, no
// guard ever saw wrong bytes, every tenant diverged privately, and no
// sealed golden layer moved.
func bootstormOK(r bootstormRun, vms int) bool {
	return r.drained && r.guardBad == 0 && r.res.Errors == 0 &&
		r.divergent == vms && r.baseOK && r.cloneCopies == 0
}

// bootstormTable sweeps fleet sizes under both regimes, plus one
// big-image shared cell: clone_layers and clone_copies must match the
// small-image cell — the clone-cost-is-metadata-only claim.
func bootstormTable(o Options) *Table {
	t := &Table{
		ID:    "bootstorm",
		Title: "Boot storm: shared golden image vs flat per-tenant images",
		Cols: []string{"kiops", "hit_ratio", "cow_breaks", "dedup_hits", "unique_chunks",
			"clone_layers", "clone_copies", "divergent", "base_ok", "guard_bad", "ok"},
	}
	imgBlocks := uint64(bootImageBlocksFull)
	fleets := []int{32, 64, 128}
	if o.Quick {
		imgBlocks = bootImageBlocksQuick
		fleets = []int{8, 16}
	}
	// Every cell is an independent shard; rows are assembled in enqueue
	// order after the group runs, so the table matches a serial sweep.
	g := o.group()
	type cell struct {
		name string
		vms  int
		r    *bootstormRun
	}
	var cells []cell
	queue := func(name string, vms int, blocks uint64, shared bool, shards int) {
		r := shard(g, func() bootstormRun {
			return runBootstorm(o, vms, blocks, bootCacheChunks, shared, shards)
		})
		cells = append(cells, cell{name, vms, r})
	}
	for _, n := range fleets {
		queue(fmt.Sprintf("shared N=%d", n), n, imgBlocks, true, 0)
		queue(fmt.Sprintf("flat N=%d", n), n, imgBlocks, false, 0)
	}
	queue(fmt.Sprintf("shared N=%d img x4", fleets[0]), fleets[0], imgBlocks*4, true, 0)
	// The sharded cell sends the whole storm through the per-core shard
	// fleet (scale-sweep sizing rule: one shard per 16 tenants, max 64) —
	// at the full 1024-tenant fleet this is the paper's boot-storm-at-scale
	// configuration, and the same integrity/divergence predicate must hold.
	stormN := 1024
	if o.Quick {
		stormN = 32
	}
	queue(fmt.Sprintf("sharded N=%d", stormN), stormN, imgBlocks, true, scaleShards(stormN))
	g.Run()
	for _, c := range cells {
		r := *c.r
		ok := 0.0
		if bootstormOK(r, c.vms) {
			ok = 1
		}
		baseOK := 0.0
		if r.baseOK {
			baseOK = 1
		}
		t.Add(c.name,
			r.res.KIOPS(),
			r.hitRatio,
			float64(r.cowBreaks),
			float64(r.dedupHits),
			float64(r.uniqChunks),
			float64(r.cloneLayers),
			float64(r.cloneCopies),
			float64(r.divergent),
			baseOK,
			float64(r.guardBad),
			ok)
	}
	t.Notes = "same total cache budget per row pair; hit_ratio = content-cache hits/lookups; ok = drained, guard_bad=0, every tenant diverged, golden CRCs unchanged, clone copied zero chunks; sharded row runs the fleet through the per-core shard router (1 shard per 16 VMs, max 64)"
	return t
}
