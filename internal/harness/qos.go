package harness

import (
	"nvmetro/internal/device"
	"nvmetro/internal/fio"
	"nvmetro/internal/qos"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
)

// The qos experiment extends the Fig. 5 shared-worker setup with a noisy
// neighbor: a rate-gated latency-probe victim shares one router worker with
// a closed-loop aggressor. Without QoS the aggressor's batches inflate the
// victim's tail; with the WFQ arbiter (victim weighted up, aggressor capped
// at its contracted rate) the victim's p99 returns to its solo level while
// the aggressor is held to its share. A final row runs both tenants closed
// loop under 3:1 weights with no rate caps to show throughput converging to
// the weight ratio.

// aggrContractIOPS is the aggressor's contracted rate in the wfq scenario:
// its "fair share" by contract, which its closed-loop demand exceeds by
// well over 10x.
const aggrContractIOPS = 30000

// qosScenario is one noisy-neighbor configuration.
type qosScenario struct {
	useQoS bool
	aggr   bool       // run the aggressor group at all
	vCfg   fio.Config // victim workload
	aCfg   fio.Config // aggressor workload
	vQoS   qos.TenantConfig
	aQoS   qos.TenantConfig
}

// runQoSPair provisions two single-vCPU VMs on carved partitions over one
// shared router worker and runs the scenario, returning (victim, aggressor)
// results. The aggressor result is zero when the scenario runs solo.
//
// The router's per-operation costs are scaled 4x: the scenario is a
// congested shared worker (the arbitrated stage must be the scarce
// resource for arbitration to matter — at stock costs the device
// controller saturates first and shapes every tenant identically).
func runQoSPair(o Options, sc qosScenario) (fio.Result, fio.Result) {
	env := sim.New(o.Seed + 1)
	defer env.Close()
	p := stack.DefaultParams()
	p.Router.PollVQ *= 4
	p.Router.Classify *= 4
	p.Router.ClassifyNat *= 4
	p.Router.DispatchHQ *= 4
	p.Router.DispatchNQ *= 4
	p.Router.DispatchKQ *= 4
	p.Router.CompleteVCQ *= 4
	p.Router.IRQInject *= 4
	h := stack.NewHost(env, 12, 8, p, device.NullStore{})
	sol := stack.NewNVMetroShared(h, 1)
	if sc.useQoS {
		sol.WithQoS(qos.Config{})
	}
	parts := device.Carve(h.Dev, 1, 2)

	vVM := h.NewVM(1, 16<<20)
	vDisk := sol.Provision(vVM, parts[0])
	aVM := h.NewVM(1, 16<<20)
	aDisk := sol.Provision(aVM, parts[1])
	if sc.useQoS {
		sol.SetQoS(vVM, sc.vQoS)
		sol.SetQoS(aVM, sc.aQoS)
	}

	groups := []fio.Group{
		{Name: "victim", Targets: []fio.Target{{Disk: vDisk, VM: vVM, VCPU: vVM.VCPU(0)}}, Cfg: sc.vCfg},
	}
	if sc.aggr {
		groups = append(groups, fio.Group{
			Name:    "aggressor",
			Targets: []fio.Target{{Disk: aDisk, VM: aVM, VCPU: aVM.VCPU(0)}},
			Cfg:     sc.aCfg,
		})
	}
	res := fio.RunMixed(env, h.CPU, groups)
	if !sc.aggr {
		return res[0], fio.Result{}
	}
	return res[0], res[1]
}

// qosTable runs the four scenarios and renders the isolation table.
func qosTable(o Options) *Table {
	warm, dur := o.latWindows()
	probe := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 4, RateIOPS: 20000, Warmup: warm, Duration: dur}
	flood := fio.Config{Mode: fio.RandWrite, BlockSize: 512, QD: 128, Warmup: warm, Duration: dur}
	closed := fio.Config{Mode: fio.RandWrite, BlockSize: 512, QD: 32, Warmup: warm, Duration: dur}

	scenarios := []struct {
		label string
		sc    qosScenario
	}{
		{"victim solo", qosScenario{vCfg: probe}},
		{"no-qos + aggressor", qosScenario{aggr: true, vCfg: probe, aCfg: flood}},
		{"wfq + capped aggressor", qosScenario{
			useQoS: true, aggr: true, vCfg: probe, aCfg: flood,
			vQoS: qos.TenantConfig{Weight: 4, SLOTargetP99: 5 * sim.Millisecond},
			aQoS: qos.TenantConfig{Weight: 1, IOPS: aggrContractIOPS, BurstOps: 64},
		}},
		{"wfq 3:1 closed-loop", qosScenario{
			useQoS: true, aggr: true, vCfg: closed, aCfg: closed,
			vQoS: qos.TenantConfig{Weight: 3},
			aQoS: qos.TenantConfig{Weight: 1},
		}},
	}

	t := &Table{
		ID:    "qos",
		Title: "noisy-neighbor isolation on one shared router worker",
		Cols:  []string{"victim kIOPS", "victim p50 us", "victim p99 us", "aggr kIOPS"},
		Notes: "victim: rate-gated 512B randread probe; aggressor: closed-loop 512B randwrite.\n" +
			"last row: both closed-loop at 3:1 WFQ weights (victim = weight-3 tenant).",
	}
	type cells struct{ v [4]float64 }
	out := make([]cells, len(scenarios))
	o.forEach(len(scenarios), func(i int) {
		v, a := runQoSPair(o, scenarios[i].sc)
		out[i] = cells{[4]float64{
			v.KIOPS(),
			float64(v.Lat.Median()) / 1e3,
			float64(v.Lat.P99()) / 1e3,
			a.KIOPS(),
		}}
	})
	for i, s := range scenarios {
		t.Add(s.label, out[i].v[:]...)
	}
	return t
}

func init() {
	register("qos", "QoS arbitration: noisy-neighbor isolation with WFQ, rate caps and SLOs", func(o Options) []*Table {
		return []*Table{qosTable(o)}
	})
}
