//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in, so tests
// can skip legs whose cost the detector multiplies without adding coverage
// (byte-identity re-renders are single-threaded determinism checks).
const raceEnabled = true
