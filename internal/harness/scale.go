package harness

import (
	"fmt"

	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/fio"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
)

// The scale experiment is the sharded-router deliverable: a 1→1024-VM
// sweep through the per-core shard fleet with adaptive path promotion.
// Every tenant gets a whole namespace (so the default, statically-constant
// fast-path classifier stays loaded and the tenant promotes to the direct
// SQ→HSQ mapping) on a per-shard NVMe device — the paper's per-core
// SQ/HSQ deployment shape, one device queue pair set per shard, so the
// sweep measures router scaling rather than a single drive's ceiling.
// Tenants place least-loaded across ceil(N/32) shards (capped at 32) and
// run closed-loop QD1 512 B random reads: the per-op latency is then the
// full mediation hop, making aggregate IOPS and p99 direct measures of
// per-shard dispatch cost.
//
// One mid-sweep row replays a promotion/demotion episode: a third of the
// way into the measurement window, tenant 0's classifier is hot-swapped
// for the (map-dependent, unprovable) partition classifier — demoting it
// synchronously — and swapped back at two thirds, re-promoting it through
// the shard's control inbox. The row's ok asserts the fence: zero guest
// errors, everything drained, and the tenant finishes promoted again.
func init() {
	register("scale", "Sharded router scale sweep: 1-1024 VMs, per-core shards, adaptive path promotion", func(o Options) []*Table {
		return []*Table{scaleTable(o)}
	})
}

const (
	// scaleTenantsPerShard is the fleet sizing rule: one shard per 16
	// tenants, capped at scaleMaxShards (the testbed's host-core budget).
	// 16 QD1 tenants keep a shard's poll round around 10 µs, so the
	// queueing a command sees on top of device latency stays well inside
	// the p99-flatness budget (1.5x the 1-VM point).
	scaleTenantsPerShard = 16
	scaleMaxShards       = 64
	// scaleNSBlocks sizes each tenant namespace (512 B blocks, 1 GiB — the
	// fio default workset, so every job addresses its whole namespace).
	scaleNSBlocks = 1 << 21
)

// scaleShards returns the shard count for a fleet of n tenants.
func scaleShards(n int) int {
	s := (n + scaleTenantsPerShard - 1) / scaleTenantsPerShard
	if s > scaleMaxShards {
		s = scaleMaxShards
	}
	return s
}

// scaleRun is one sweep cell's outcome.
type scaleRun struct {
	res    fio.Result
	shards int

	promoted        int // tenants on the direct mapping at the end
	promotions      uint64
	demotions       uint64
	promotedOps     uint64
	classifications uint64

	episode   bool // this cell ran the mid-sweep hot-swap episode
	episodeOK bool // demoted at swap, re-promoted after restore
	drained   bool
}

// runScale builds a fleet of vms single-vCPU tenants over per-shard
// devices and runs the closed-loop sweep workload; when episode is set,
// tenant 0 rides through a demote/re-promote cycle mid-measurement.
func runScale(o Options, vms int, episode bool) scaleRun {
	shards := scaleShards(vms)
	env := sim.New(o.Seed + 1)
	defer env.Close()
	p := stack.DefaultParams()
	h := stack.NewHost(env, vms+shards+2, vms, p, device.NullStore{})

	// One device per shard: the host's drive serves shard 0, the rest are
	// its twins. Tenant i lands on shard i%shards (least-loaded placement
	// in attach order), so its namespace lives on its shard's device.
	devs := make([]*device.Device, shards)
	devs[0] = h.Dev
	for j := 1; j < shards; j++ {
		devs[j] = device.New(env, p.Device, device.NullStore{})
	}

	sol := stack.NewNVMetroSharded(h, shards)
	targets := make([]fio.Target, vms)
	vcs := make([]*core.Controller, vms)
	for i := 0; i < vms; i++ {
		dev := devs[i%shards]
		nsid := uint32(1)
		if i >= shards {
			nsid = dev.NextNSID()
			dev.AddNamespace(nsid, scaleNSBlocks, device.NullStore{})
		}
		v := h.NewVM(1, 16<<20)
		disk := sol.Provision(v, device.WholeNamespace(dev, nsid))
		vcs[i] = sol.ControllerFor(v)
		targets[i] = fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(0)}
	}

	warm, dur := o.windows()
	cfg := fio.Config{Mode: fio.RandRead, BlockSize: 512, QD: 1, Warmup: warm, Duration: dur}

	out := scaleRun{shards: shards, episode: episode}
	if episode {
		// The hot-swap episode runs inside the measurement window so the
		// row's numbers include the demoted stretch.
		prog, _ := storfn.PartitionClassifier(vcs[0].Partition())
		env.Go("scale-episode", func(pr *sim.Proc) {
			pr.Sleep(sim.Duration(warm) + dur/3)
			if err := vcs[0].LoadClassifier(prog); err != nil {
				panic(err)
			}
			demoted := !vcs[0].Promoted()
			pr.Sleep(dur / 3)
			if err := vcs[0].LoadClassifier(core.DefaultClassifier()); err != nil {
				panic(err)
			}
			out.episodeOK = demoted
		})
	}

	out.res = fio.Run(env, h.CPU, targets, cfg)
	out.drained = true
	for _, vc := range vcs {
		out.drained = out.drained && drainOutstanding(env, vc.Outstanding)
	}

	r := sol.Fleet().Router()
	for _, vc := range vcs {
		if vc.Promoted() {
			out.promoted++
		}
	}
	if episode {
		// The fence must have closed on swap and reopened after restore.
		out.episodeOK = out.episodeOK && vcs[0].Promoted() && r.Demotions >= 1
	}
	out.promotions = r.Promotions
	out.demotions = r.Demotions
	out.promotedOps = r.PromotedOps
	out.classifications = r.Classifications
	return out
}

// scaleOK is the cell acceptance predicate: no guest-visible errors,
// everything drained, every tenant finished on the direct mapping, and —
// outside the episode cell, where tenant 0's demoted stretch legitimately
// classifies — zero classifier executions (the promotion tier fully
// elided the classifier).
func scaleOK(r scaleRun, vms int) bool {
	ok := r.drained && r.res.Errors == 0 && r.promoted == vms &&
		r.promotions >= uint64(vms)
	if r.episode {
		return ok && r.episodeOK && r.classifications > 0
	}
	return ok && r.classifications == 0 && r.demotions == 0
}

// scaleTable sweeps the fleet sizes; one mid-size row carries the
// promotion/demotion episode.
func scaleTable(o Options) *Table {
	t := &Table{
		ID:    "scale",
		Title: "Sharded router scale sweep (closed-loop 512B randread, QD1 per VM)",
		Cols: []string{"shards", "kiops", "kiops_per_vm", "p99_us", "promoted",
			"promotions", "demotions", "promoted_ops", "classified", "episode", "ok"},
	}
	fleets := []int{1, 4, 16, 64, 256, 1024}
	episodeAt := 64
	if o.Quick {
		fleets = []int{1, 8, 64}
		episodeAt = 8
	}
	g := o.group()
	type cell struct {
		vms int
		r   *scaleRun
	}
	var cells []cell
	for _, n := range fleets {
		n := n
		ep := n == episodeAt
		cells = append(cells, cell{n, shard(g, func() scaleRun { return runScale(o, n, ep) })})
	}
	g.Run()
	for _, c := range cells {
		r := *c.r
		ok, ep := 0.0, 0.0
		if scaleOK(r, c.vms) {
			ok = 1
		}
		if r.episode {
			ep = 1
		}
		t.Add(fmt.Sprintf("N=%d", c.vms),
			float64(r.shards),
			r.res.KIOPS(),
			r.res.KIOPS()/float64(c.vms),
			float64(r.res.Lat.P99())/1e3,
			float64(r.promoted),
			float64(r.promotions),
			float64(r.demotions),
			float64(r.promotedOps),
			float64(r.classifications),
			ep,
			ok)
	}
	t.Notes = "one shard per 16 VMs (max 64), one device per shard, whole namespace per VM; episode row hot-swaps VM0's classifier mid-window (demote) and back (re-promote); ok = drained, errors=0, all promoted, classifier fully elided (episode row: fence verified)"
	return t
}
