package harness

import (
	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/fio"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// The resync experiment drives the replication stack through fabric
// outages and measures the drain back to a consistent mirror: guest
// writes landing during an outage degrade the mirror and accumulate
// dirty regions; the link-up callback triggers the Resyncer, which
// copies the dirty ranges from the primary to the secondary under a
// rate limit, re-dirtying anything the guest overwrites mid-copy, and
// verifies the result before declaring the mirror InSync. Every row
// must converge to a bit-identical secondary with zero guest-visible
// errors.
func init() {
	register("resync", "Replica resync: dirty-region drain back to a consistent mirror", func(o Options) []*Table {
		return []*Table{resyncTable(o)}
	})
}

// resyncRecovery makes secondary-leg failures resolve within the
// millisecond-scale outage windows: one 500 µs attempt (5x the worst
// healthy remote read RTT), no retries. Slow-timeout policies would let
// the link-up requeue mask the outage instead of exercising degraded
// mode and the resync path.
var resyncRecovery = nvmeof.InitiatorRecovery{
	Timeout:    500 * sim.Microsecond,
	MaxRetries: 0,
	Backoff:    50 * sim.Microsecond,
}

// outageSpec is one scheduled fabric outage.
type outageSpec struct {
	at  sim.Time
	dur sim.Duration
}

// resyncRun is one resync workload outcome.
type resyncRun struct {
	res         fio.Result
	counters    metrics.CounterSet
	drained     bool   // every accepted guest command completed
	converged   bool   // mirror reached InSync within the bound
	mirrorMatch bool   // primary and secondary stores are bit-identical
	finalDirty  uint64 // dirty blocks left after convergence (must be 0)
}

// runResync runs the replication stack with content-backed stores on
// both legs, a Resyncer wired to the initiator's link-up callback, and
// the given outage schedule, then drives the simulation until the
// mirror converges.
func runResync(o Options, outages []outageSpec, rcfg storfn.ResyncConfig, cfg fio.Config, jobs int) resyncRun {
	store := device.NewMemStore(512)
	env, h := newBed(o, store)
	defer env.Close()
	p := h.Params
	v := h.NewVM(4, 512<<20)
	router := core.NewRouter(env, p.Router, []*sim.Thread{h.HostThread("router")})
	vc := router.Attach(v, device.WholeNamespace(h.Dev, 1))
	prog, _ := storfn.ReplicatorClassifier(vc.Partition())
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}

	rstore := device.NewMemStore(512)
	remote := stack.NewRemoteHost(env, 4, p.Device, rstore)
	for _, ow := range outages {
		remote.Link.ScheduleOutage(ow.at, ow.dur)
	}
	ini := remote.Secondary()(vc.Partition()).(*nvmeof.Initiator)
	if err := ini.SetRecovery(resyncRecovery); err != nil {
		panic(err)
	}
	ring := blockdev.NewURing(env, ini, p.URing)
	fw := uif.NewFramework(env, p.UIF, []*sim.Thread{h.HostThread("uif")})
	rep := storfn.NewReplicator()
	att := fw.Attach(vc.AttachUIF(512), rep, ring)

	// The resyncer reads the primary through its own host block device so
	// drain traffic never contends with the guest's fast-path queues.
	primary := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(h.Dev, 1), h.CPU, 7, p.Block)
	rs, err := storfn.NewResyncer(env, rep, primary, att, h.HostThread("resync"), h.Dev.Params().LBAShift, rcfg)
	if err != nil {
		panic(err)
	}
	ini.OnReconnect(rs.OnLinkUp)

	disk := vm.NewNVMeDisk(v, vc, 128, p.Driver)
	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := resyncRun{res: fio.Run(env, h.CPU, targets, cfg)}
	out.drained = drainOutstanding(env, vc.Outstanding)

	// Drive the drain to convergence. Nudge the resyncer when it sits
	// Degraded: the last outage may have outlived the workload, leaving no
	// link-up to retrigger it.
	deadline := env.Now().Add(2 * sim.Second)
	for rs.State() != storfn.StateInSync && env.Now() < deadline {
		if rs.State() == storfn.StateDegraded {
			rs.Trigger()
		}
		env.RunUntil(env.Now().Add(sim.Millisecond))
	}
	out.converged = rs.State() == storfn.StateInSync
	out.finalDirty = rep.Dirty.Blocks()
	out.mirrorMatch = store.ContentCRC() == rstore.ContentCRC()

	collectReplicator(&out.counters, rep)
	collectInitiator(&out.counters, remote.Link, ini)
	rs.Collect(&out.counters)
	out.counters.Add("fio.errors", out.res.Errors)
	return out
}

// resyncTable exercises the resync engine across outage shapes: a single
// outage with a fast drain, a second outage landing mid-resync (the
// abort/re-trigger path), and repeated outages accumulating dirty state
// across interruptions.
func resyncTable(o Options) *Table {
	cfg := faultCfg(o)
	cfg.Mode = fio.RandWrite // only writes are mirrored
	warm, _ := o.windows()
	at := func(d sim.Duration) sim.Time { return sim.Time(0).Add(warm + d) }
	t := &Table{
		ID:    "resync",
		Title: "Replica resync: outage recovery back to a consistent mirror",
		Cols:  []string{"kIOPS", "degraded", "resynced", "redirtied", "aborts", "converged", "mirror_ok"},
	}
	slow := storfn.DefaultResyncConfig()
	slow.Rate = 20e6 // 20 MB/s: the drain outlives the second outage
	rows := []struct {
		name    string
		outages []outageSpec
		rcfg    storfn.ResyncConfig
	}{
		{"one 3ms outage", []outageSpec{{at(sim.Millisecond), 3 * sim.Millisecond}}, storfn.DefaultResyncConfig()},
		{"outage mid-resync", []outageSpec{
			{at(sim.Millisecond), 3 * sim.Millisecond},
			{at(6 * sim.Millisecond), 2 * sim.Millisecond},
		}, slow},
		{"three outages", []outageSpec{
			{at(sim.Millisecond), 2 * sim.Millisecond},
			{at(4 * sim.Millisecond), sim.Millisecond},
			{at(6 * sim.Millisecond), 2 * sim.Millisecond},
		}, slow},
	}
	// One shard per outage shape; rows assemble in declaration order.
	g := o.group()
	runs := make([]*resyncRun, len(rows))
	for i, row := range rows {
		row := row
		runs[i] = shard(g, func() resyncRun { return runResync(o, row.outages, row.rcfg, cfg, 4) })
	}
	g.Run()
	for i, row := range rows {
		rr := *runs[i]
		converged, mirrorOK := 0.0, 0.0
		if rr.converged && rr.drained && rr.finalDirty == 0 {
			converged = 1
		}
		if rr.mirrorMatch {
			mirrorOK = 1
		}
		t.Add(row.name,
			rr.res.KIOPS(),
			float64(rr.counters.Get("rep.degraded")),
			float64(rr.counters.Get("rs.resynced_blocks")),
			float64(rr.counters.Get("rs.redirtied_blocks")),
			float64(rr.counters.Get("rs.aborts")),
			converged,
			mirrorOK)
	}
	t.Notes = "converged = drained, InSync and zero dirty blocks; mirror_ok = primary and secondary stores bit-identical"
	return t
}
