package harness

import (
	"fmt"

	hostcache "nvmetro/internal/cache"
	"nvmetro/internal/device"
	"nvmetro/internal/fio"
	"nvmetro/internal/metrics"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/vm"
)

// The cache experiment measures the classifier-steered host block cache:
// a zipfian re-read workload heats LBA buckets until the classifier
// diverts their reads to the cache UIF, which serves hits from host
// memory without touching the device. A probe phase then measures the
// three read paths — cached hit, cold fast path, and miss fill — from
// the guest's point of view, and a coherence probe overwrites a cached
// block and re-reads it: the cache must never serve the old data.
func init() {
	register("cache", "Host block cache: classifier-steered hot reads from host memory", func(o Options) []*Table {
		return []*Table{cacheTable(o)}
	})
}

// cacheCfg is the cache workload: 4 KiB random reads over a 4 MiB
// per-job working set, zipf-skewed so a small hot set dominates.
func cacheCfg(o Options) fio.Config {
	warm, dur := o.windows()
	return fio.Config{
		Mode: fio.RandRead, BlockSize: 4096, QD: 8,
		Warmup: warm, Duration: dur,
		WorkSet: 4 << 20, Zipf: 1.2,
	}
}

// cacheRun is one cache workload outcome.
type cacheRun struct {
	res      fio.Result
	counters metrics.CounterSet
	hitRatio float64 // UIF reads served from cache (workload phase only)
	hitP50   sim.Duration
	fastP50  sim.Duration
	fillP50  sim.Duration
	coherent bool // overwrite of a cached block never read back stale
	drained  bool // every accepted guest command completed
}

// runCache runs the cache stack over a content-backed store, then probes
// per-path latency and write/read coherence directly from a guest program.
func runCache(o Options, cp storfn.CacheParams, cfg fio.Config, jobs int) cacheRun {
	env, h := newBed(o, device.NewMemStore(512))
	defer env.Close()
	v := h.NewVM(4, 512<<20)
	sol := stack.NewNVMetro(h).WithCache(cp)
	disk := sol.Provision(v, device.WholeNamespace(h.Dev, 1))
	cacher := sol.CacherFor(v)
	vc := sol.ControllerFor(v)

	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := cacheRun{res: fio.Run(env, h.CPU, targets, cfg)}
	out.drained = drainOutstanding(env, vc.Outstanding)

	// Workload-phase hit ratio, before the probes skew the request mix.
	if reads := cacher.ReqHits + cacher.ReqFills; reads > 0 {
		out.hitRatio = float64(cacher.ReqHits) / float64(reads)
	}

	probeCache(env, v, disk, cp, cfg.BlockSize, &out)

	cacher.Collect(&out.counters)
	out.counters.Add("fio.errors", out.res.Errors)
	out.counters.Add("fio.ops", out.res.Ops)
	return out
}

// probeCache measures guest-visible latency per read path and checks
// coherence. The probe region sits at the top of the namespace, far above
// the fio job regions, so every probed bucket starts cold.
func probeCache(env *sim.Env, v *vm.VM, disk vm.Disk, cp storfn.CacheParams, ioBytes uint32, out *cacheRun) {
	const probes = 32
	hit, fast, fill := metrics.NewHistogram(), metrics.NewHistogram(), metrics.NewHistogram()
	done := false
	env.Go("cache-probe", func(p *sim.Proc) {
		defer func() { done = true }()
		perIO := uint64(ioBytes / disk.BlockSize())
		stride := uint64(1) << cp.BucketShift // blocks per heat bucket
		if perIO > stride {
			stride = perIO
		}
		base := disk.Blocks() - (3*probes+8)*stride
		vcpu := v.VCPU(0)
		bufBase, pages, err := v.Mem.AllocBuffer(ioBytes)
		if err != nil {
			panic(err)
		}
		read := func(lba uint64) sim.Duration {
			r := &vm.Req{Op: vm.OpRead, LBA: lba, Blocks: uint32(perIO), Buf: bufBase, BufPages: pages}
			if st := vm.SubmitAndWait(p, disk, vcpu, r); !st.OK() {
				panic(fmt.Sprintf("cache probe read @%d: %v", lba, st))
			}
			return r.Latency()
		}
		// Cold fast path: one first-touch read per untouched bucket.
		for i := uint64(0); i < probes; i++ {
			fast.Record(int64(read(base + i*stride)))
		}
		// Miss fill: warm a bucket's heat to the threshold; the read that
		// crosses it is diverted to the UIF and fills from the backend.
		for i := uint64(0); i < probes; i++ {
			lba := base + (probes+i)*stride
			for w := uint64(1); w < cp.HotThreshold; w++ {
				read(lba)
			}
			fill.Record(int64(read(lba)))
		}
		// Cached hit: one hot bucket, fill once, then re-read repeatedly.
		hot := base + 2*probes*stride
		for w := uint64(0); w < cp.HotThreshold; w++ {
			read(hot)
		}
		for i := 0; i < probes; i++ {
			hit.Record(int64(read(hot)))
		}
		// Coherence: overwrite the now-cached block and re-read. The write
		// passes the UIF's invalidation window, so the old bytes must be
		// gone no matter how the write raced the resident entry.
		pattern := make([]byte, ioBytes)
		for i := range pattern {
			pattern[i] = byte(i*13 + 7)
		}
		v.Mem.WriteAt(pattern, bufBase)
		w := &vm.Req{Op: vm.OpWrite, LBA: hot, Blocks: uint32(perIO), Buf: bufBase, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk, vcpu, w); !st.OK() {
			panic(fmt.Sprintf("cache probe write: %v", st))
		}
		v.Mem.WriteAt(make([]byte, ioBytes), bufBase)
		read(hot)
		got := make([]byte, ioBytes)
		v.Mem.ReadAt(got, bufBase)
		out.coherent = string(got) == string(pattern)
	})
	deadline := env.Now().Add(2 * sim.Second)
	for !done && env.Now() < deadline {
		env.RunUntil(env.Now().Add(sim.Millisecond))
	}
	out.hitP50 = sim.Duration(hit.Median())
	out.fastP50 = sim.Duration(fast.Median())
	out.fillP50 = sim.Duration(fill.Median())
}

// cacheTable sweeps workload mix and cache configuration: the zipf
// re-read sweet spot, mixed read/write under both write policies (write-
// through keeps overwritten blocks hot, write-around sheds them), and a
// deliberately undersized cache to exercise ARC eviction under pressure.
func cacheTable(o Options) *Table {
	t := &Table{
		ID:    "cache",
		Title: "Host block cache: hit ratio and per-path read latency",
		Cols:  []string{"kIOPS", "hit_ratio", "hit_p50_us", "fast_p50_us", "fill_p50_us", "evictions", "conflicts", "coherent"},
	}
	small := storfn.DefaultCacheParams()
	small.Cache.CapacityBlocks = 2048 // 1 MiB: forces eviction under the hot set
	wa := storfn.DefaultCacheParams()
	wa.Cache.WritePolicy = hostcache.WriteAround
	mixed := func(c fio.Config) fio.Config { c.Mode = fio.RandRW; return c }
	rows := []struct {
		name string
		cp   storfn.CacheParams
		cfg  fio.Config
	}{
		{"zipf re-read WT", storfn.DefaultCacheParams(), cacheCfg(o)},
		{"mixed RW WT", storfn.DefaultCacheParams(), mixed(cacheCfg(o))},
		{"mixed RW WA", wa, mixed(cacheCfg(o))},
		{"small cache WT", small, cacheCfg(o)},
	}
	// One shard per cache configuration; rows assemble in declaration order.
	g := o.group()
	runs := make([]*cacheRun, len(rows))
	for i, row := range rows {
		row := row
		runs[i] = shard(g, func() cacheRun { return runCache(o, row.cp, row.cfg, 4) })
	}
	g.Run()
	for i, row := range rows {
		cr := *runs[i]
		coherent := 0.0
		if cr.coherent && cr.drained {
			coherent = 1
		}
		t.Add(row.name,
			cr.res.KIOPS(),
			cr.hitRatio,
			float64(cr.hitP50)/1e3,
			float64(cr.fastP50)/1e3,
			float64(cr.fillP50)/1e3,
			float64(cr.counters.Get("cache.evictions")),
			float64(cr.counters.Get("cache.conflicts")),
			coherent)
	}
	t.Notes = "hit_ratio = cache hits / UIF reads during the fio phase; coherent = a probe overwrite of a cached block was never read back stale"
	return t
}
