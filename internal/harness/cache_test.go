package harness

import (
	"testing"

	hostcache "nvmetro/internal/cache"
	"nvmetro/internal/fio"
	"nvmetro/internal/storfn"
)

// End-to-end acceptance for the host block cache: the zipfian re-read
// workload must serve most UIF reads from the cache, a cached hit must
// be strictly faster than the device fast path at the guest, the
// coherence probe (overwrite of a cached block, then re-read) must never
// observe stale data, and same-seed runs must produce bit-identical
// counter traces.
func TestCacheE2EZipfReread(t *testing.T) {
	o := Options{Quick: true, Seed: 7}
	cp := storfn.DefaultCacheParams()
	cfg := cacheCfg(o)

	a := runCache(o, cp, cfg, 4)
	if !a.drained {
		t.Fatal("guest commands stuck in flight after the run (hang)")
	}
	if a.res.Errors != 0 {
		t.Fatalf("guest saw %d I/O errors: %s", a.res.Errors, a.counters.String())
	}
	if a.hitRatio <= 0.5 {
		t.Fatalf("zipf re-read hit ratio %.2f, want > 0.5: %s", a.hitRatio, a.counters.String())
	}
	if a.hitP50 <= 0 || a.fastP50 <= 0 || a.fillP50 <= 0 {
		t.Fatalf("probe produced empty path latencies: hit=%v fast=%v fill=%v", a.hitP50, a.fastP50, a.fillP50)
	}
	// The whole point of the cache: a hit never touches the device, so it
	// must beat the device fast path from the guest's point of view.
	if a.hitP50 >= a.fastP50 {
		t.Fatalf("cached hit p50 %v not below fast path p50 %v", a.hitP50, a.fastP50)
	}
	// A fill is a notify-path detour plus the backend read; it can only be
	// slower than the direct fast path.
	if a.fillP50 <= a.fastP50 {
		t.Fatalf("fill p50 %v not above fast path p50 %v", a.fillP50, a.fastP50)
	}
	if !a.coherent {
		t.Fatalf("coherence probe read stale data after overwriting a cached block: %s", a.counters.String())
	}
	if a.counters.Get("cacher.req_hits") == 0 || a.counters.Get("cache.installs") == 0 {
		t.Fatalf("cache never engaged: %s", a.counters.String())
	}

	b := runCache(o, cp, cfg, 4)
	if !a.counters.Equal(&b.counters) {
		t.Fatalf("same seed produced different cache traces:\n%s\n%s",
			a.counters.String(), b.counters.String())
	}
	if a.res.Ops != b.res.Ops {
		t.Fatalf("same seed produced different op counts: %d/%d", a.res.Ops, b.res.Ops)
	}
}

// Write-around must shed overwritten blocks (re-fill on next read) while
// write-through keeps them servable; both must stay coherent.
func TestCacheE2EWritePolicies(t *testing.T) {
	o := Options{Quick: true, Seed: 7}
	cfg := cacheCfg(o)
	cfg.Mode = fio.RandRW

	wt := runCache(o, storfn.DefaultCacheParams(), cfg, 4)
	wa := storfn.DefaultCacheParams()
	wa.Cache.WritePolicy = hostcache.WriteAround
	war := runCache(o, wa, cfg, 4)

	for _, r := range []struct {
		name string
		cr   cacheRun
	}{{"write-through", wt}, {"write-around", war}} {
		if !r.cr.drained || !r.cr.coherent {
			t.Fatalf("%s: drained=%v coherent=%v", r.name, r.cr.drained, r.cr.coherent)
		}
	}
	// Write-through re-installs overwritten blocks, write-around drops
	// them, so under the same mixed workload it must re-fill more.
	if war.counters.Get("cacher.req_fills") <= wt.counters.Get("cacher.req_fills") {
		t.Fatalf("write-around fills (%d) not above write-through fills (%d)",
			war.counters.Get("cacher.req_fills"), wt.counters.Get("cacher.req_fills"))
	}
}
