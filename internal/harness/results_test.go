package harness

import (
	"os"
	"path/filepath"
	"testing"
)

// TestResultsCSVs re-renders full-mode (non-quick) paper artifacts that are
// checked into results/ and asserts byte-identity. Where TestGoldenCSVs pins
// the quick grids, this pins the published full-resolution tables across
// scheduler changes: the DES core rewrite must not move a single byte of
// Table I or the boot-storm fleet results at the recorded seed.
func TestResultsCSVs(t *testing.T) {
	ids := []string{"table1"}
	// The full 1024-VM boot-storm and scale fleets are minutes of
	// single-threaded simulation under the race detector for a check that
	// is purely about deterministic bytes; the plain `go test ./...` tier
	// covers them.
	if !testing.Short() && !raceEnabled {
		ids = append(ids, "bootstorm", "scale")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			for _, tbl := range e.Run(Options{Seed: 1}) {
				path := filepath.Join("..", "..", "results", tbl.ID+".csv")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing published CSV for table %s: %v", tbl.ID, err)
				}
				if got := tbl.CSV(); got != string(want) {
					t.Errorf("table %s diverged from %s:\n--- got ---\n%s--- want ---\n%s",
						tbl.ID, path, got, want)
				}
			}
		})
	}
}
