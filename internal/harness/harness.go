// Package harness is the evaluation driver: it rebuilds the paper's entire
// testbed per configuration (fresh simulation, host, device, VMs, solution
// stack), runs the fio and YCSB workloads of Section V, and renders one
// table per paper figure. Every experiment is registered by figure ID and
// runnable individually from cmd/nvmetro-bench or the root bench suite.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// Options controls run scale.
type Options struct {
	Quick bool  // shorter windows and a thinner grid for CI/bench runs
	Seed  int64 // simulation seed
	// Workers is the number of concurrent grid points. The zero value —
	// the default — resolves to runtime.GOMAXPROCS(0), so grids run
	// parallel unless a caller forces Workers to 1 (serial). Results are
	// identical either way; see TestParallelMatchesSerial.
	Workers int
}

// EffectiveWorkers resolves Workers: values <= 0 (including the default
// zero value) mean runtime.GOMAXPROCS(0).
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Table is one rendered result table.
type Table struct {
	ID    string
	Title string
	Unit  string
	Cols  []string
	Rows  []TableRow
	Notes string
}

// TableRow is one labeled result row.
type TableRow struct {
	Label string
	Cells []float64
}

// Add appends a row.
func (t *Table) Add(label string, cells ...float64) {
	t.Rows = append(t.Rows, TableRow{Label: label, Cells: cells})
}

// Cell returns a named cell (for assertions), or NaN-like -1 if missing.
func (t *Table) Cell(rowLabel, col string) float64 {
	ci := -1
	for i, c := range t.Cols {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return -1
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Cells) {
			return r.Cells[ci]
		}
	}
	return -1
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(w, " (%s)", t.Unit)
	}
	fmt.Fprintln(w, " ===")
	width := 30
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(w, "%-*s", width+2, "config")
	for _, c := range t.Cols {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", width+2, r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(w, "%14.1f", c)
		}
		fmt.Fprintln(w)
	}
	if t.Notes != "" {
		fmt.Fprintln(w, t.Notes)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as CSV.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("config," + strings.Join(t.Cols, ",") + "\n")
	for _, r := range t.Rows {
		sb.WriteString(r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(&sb, ",%.3f", c)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) []*Table
}

var registry = map[string]Experiment{}
var order []string

func register(id, title string, run func(o Options) []*Table) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
	order = append(order, id)
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// List returns all experiment IDs in registration order.
func List() []Experiment {
	ids := append([]string(nil), order...)
	sort.Slice(ids, func(i, j int) bool {
		// registration order is already curated; keep it stable
		return indexOf(order, ids[i]) < indexOf(order, ids[j])
	})
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
