package harness

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) across up to min(EffectiveWorkers, n)
// goroutines. Every experiment grid point builds its own simulation
// environment and RNG from the seed, so points are independent and results
// do not depend on execution order; callers store results by index so the
// assembled tables come out identical to a serial run (see
// TestParallelMatchesSerial).
func (o Options) forEach(n int, fn func(i int)) {
	workers := o.EffectiveWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
