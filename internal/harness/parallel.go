package harness

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) across up to min(EffectiveWorkers, n)
// goroutines. Every experiment grid point builds its own simulation
// environment and RNG from the seed, so points are independent and results
// do not depend on execution order; callers store results by index so the
// assembled tables come out identical to a serial run (see
// TestParallelMatchesSerial).
func (o Options) forEach(n int, fn func(i int)) {
	workers := o.EffectiveWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// shardGroup extends the grid-level fan-out to shard level: a table
// constructor defers every independent cell run — one task per (grid point,
// shard) — and assembles rows only after Run, so the row order (and the
// rendered bytes) is fixed by enqueue order while the runs themselves spread
// across the worker pool. Each shard builds its own simulation environment
// from the seed, so results are position-independent; see
// TestShardedMatchesSerial.
type shardGroup struct {
	o     Options
	tasks []func()
}

// group returns an empty shard group bound to o's worker budget.
func (o Options) group() *shardGroup { return &shardGroup{o: o} }

// shard defers fn as one unit of work in g and returns a pointer that holds
// fn's result once g.Run returns. (A package function only because Go
// methods cannot introduce type parameters.)
func shard[T any](g *shardGroup, fn func() T) *T {
	out := new(T)
	g.tasks = append(g.tasks, func() { *out = fn() })
	return out
}

// Run executes every deferred shard across the worker pool and clears the
// group. Reading a shard's result pointer before Run returns is a bug.
func (g *shardGroup) Run() {
	tasks := g.tasks
	g.tasks = nil
	g.o.forEach(len(tasks), func(i int) { tasks[i]() })
}
