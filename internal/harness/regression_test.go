package harness

import (
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// Regression test for a lost wake-up in the UIF adaptive poller: a uring
// completion landing during the poller's final spin quantum before parking
// was never reaped, wedging multicast (replication) writes whose PRP used
// two pages. Forty back-to-back 8 KiB mirrored writes cover the window.
func TestReplicationManyTwoPagePRPWrites(t *testing.T) {
	env := sim.New(8)
	p := stack.DefaultParams()
	h := stack.NewHost(env, 12, 4, p, device.NullStore{})
	defer env.Close()
	v := h.NewVM(4, 512<<20)
	router := core.NewRouter(env, p.Router, []*sim.Thread{h.HostThread("router")})
	vc := router.Attach(v, device.WholeNamespace(h.Dev, 1))
	prog, _ := storfn.ReplicatorClassifier(vc.Partition())
	if err := vc.LoadClassifier(prog); err != nil {
		t.Fatal(err)
	}
	remote := stack.NewRemoteHost(env, 4, p.Device, device.NullStore{})
	initiator := remote.Secondary()(vc.Partition())
	ring := blockdev.NewURing(env, initiator, p.URing)
	fw := uif.NewFramework(env, p.UIF, []*sim.Thread{h.HostThread("uif")})
	rep := storfn.NewReplicator()
	att := fw.Attach(vc.AttachUIF(512), rep, ring)
	disk := vm.NewNVMeDisk(v, vc, 128, p.Driver)

	done := 0
	env.Go("t", func(pr *sim.Proc) {
		defer env.Stop()
		base, pages, _ := v.Mem.AllocBuffer(8192)
		for i := 0; i < 40; i++ {
			r := &vm.Req{Op: vm.OpWrite, LBA: uint64(i) * 16, Blocks: 16, Buf: base, BufPages: pages}
			if st := vm.SubmitAndWait(pr, disk, v.VCPU(0), r); !st.OK() {
				t.Errorf("write %d: %v", i, st)
				return
			}
			done++
		}
	})
	env.RunUntil(sim.Time(20 * sim.Millisecond))
	t.Logf("done=%d events=%d asyncDone=%d ringSub=%d ringReaped=%d ringPend=%d fwd=%d polls=%d wakes=%d",
		done, att.Events, att.AsyncDone, ring.Submitted, ring.Reaped, ring.Pending(), rep.Forwarded, fw.Polls, fw.Wakes)
}
