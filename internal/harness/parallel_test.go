package harness

import "testing"

// compareRuns runs experiment id at both worker counts and requires
// byte-identical CSVs.
func compareRuns(t *testing.T, id string, serialWorkers, parallelWorkers int) {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	serial := e.Run(Options{Quick: true, Seed: 7, Workers: serialWorkers})
	parallel := e.Run(Options{Quick: true, Seed: 7, Workers: parallelWorkers})
	if len(serial) != len(parallel) {
		t.Fatalf("table count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		sCSV, pCSV := serial[i].CSV(), parallel[i].CSV()
		if sCSV != pCSV {
			t.Errorf("table %s differs between %d-worker and %d-worker runs:\n--- serial ---\n%s--- parallel ---\n%s",
				serial[i].ID, serialWorkers, parallelWorkers, sCSV, pCSV)
		}
	}
}

// TestParallelMatchesSerial checks that running experiment grid points
// across workers produces byte-identical tables to a serial run: every grid
// point is an isolated deterministic sim, and assembly is order-stable.
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"fig3", "fig5"}
	if !testing.Short() {
		ids = append(ids, "fig4", "fig6")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) { compareRuns(t, id, 1, 4) })
	}
}

// TestShardedMatchesSerial checks the shard-level fan-out: experiments whose
// tables are built from a shardGroup (independent cell runs merged in
// (point, shard) order) must render byte-identically at any worker count.
func TestShardedMatchesSerial(t *testing.T) {
	ids := []string{"resync", "cache"}
	if !testing.Short() {
		ids = append(ids, "fault", "scrub", "bootstorm", "chaos")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) { compareRuns(t, id, 1, 8) })
	}
}
