package harness

import "testing"

// TestParallelMatchesSerial checks that running experiment grid points
// across workers produces byte-identical tables to a serial run: every grid
// point is an isolated deterministic sim, and assembly is order-stable.
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"fig3", "fig5"}
	if !testing.Short() {
		ids = append(ids, "fig4", "fig6")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			serial := e.Run(Options{Quick: true, Seed: 7, Workers: 1})
			parallel := e.Run(Options{Quick: true, Seed: 7, Workers: 4})
			if len(serial) != len(parallel) {
				t.Fatalf("table count differs: %d vs %d", len(serial), len(parallel))
			}
			for i := range serial {
				sCSV, pCSV := serial[i].CSV(), parallel[i].CSV()
				if sCSV != pCSV {
					t.Errorf("table %s differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s",
						serial[i].ID, sCSV, pCSV)
				}
			}
		})
	}
}
