package harness

import (
	"fmt"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/core"
	"nvmetro/internal/device"
	"nvmetro/internal/fault"
	"nvmetro/internal/fio"
	"nvmetro/internal/metrics"
	"nvmetro/internal/nvmeof"
	"nvmetro/internal/sim"
	"nvmetro/internal/stack"
	"nvmetro/internal/storfn"
	"nvmetro/internal/uif"
	"nvmetro/internal/vm"
)

// The fault experiment exercises the robustness machinery end to end: a
// media-error-rate sweep across stacks (every injected error must surface
// as a guest completion, never a hang), the fast-path drop/stuck recovery
// paths under a tightened router deadline, and replication resilience with
// remote media errors and a fabric outage (degraded writes, dirty-region
// tracking, link-up requeue).
func init() {
	register("fault", "Fault injection: media-error sweep and recovery paths", func(o Options) []*Table {
		return []*Table{faultSweep(o), faultRecovery(o), faultReplication(o)}
	})
}

// faultCfg is the workload used by every fault run: mixed 4 KiB random
// I/O so both read and write media-error rules are exercised.
func faultCfg(o Options) fio.Config {
	warm, dur := o.windows()
	return fio.Config{Mode: fio.RandRW, BlockSize: 4096, QD: 8, Warmup: warm, Duration: dur}
}

// faultRun is one fault-injected workload outcome.
type faultRun struct {
	res      fio.Result
	counters metrics.CounterSet
	drained  bool // every accepted guest command completed
}

// drainOutstanding runs the simulation until outstanding() reaches zero
// (or a generous bound passes), reporting whether it drained.
func drainOutstanding(env *sim.Env, outstanding func() int) bool {
	deadline := env.Now().Add(2 * sim.Second)
	for outstanding() > 0 && env.Now() < deadline {
		env.RunUntil(env.Now().Add(sim.Millisecond))
	}
	return outstanding() == 0
}

// collectDevice folds device-side fault counters into cs.
func collectDevice(cs *metrics.CounterSet, prefix string, d *device.Device) {
	cs.Add(prefix+".injected", d.FaultInjector().InjectedTotal())
	cs.Add(prefix+".media_errors", d.MediaErrors)
	cs.Add(prefix+".dropped", d.DroppedComps)
	cs.Add(prefix+".stuck", d.StuckComps)
}

// collectRouter folds router error counters into cs.
func collectRouter(cs *metrics.CounterSet, r *core.Router) {
	cs.Add("rt.fast_errors", r.FastPathErrors)
	cs.Add("rt.notify_errors", r.NotifyPathErrors)
	cs.Add("rt.kernel_errors", r.KernelPathErrors)
	cs.Add("rt.guest_errors", r.GuestErrors)
	cs.Add("rt.stale_comps", r.StaleComps)
	cs.Add("rt.hq_timeouts", r.HQTimeouts)
	cs.Add("rt.htags_reclaimed", r.HTagsReclaimed)
	cs.Add("rt.backpressure", r.Backpressure)
}

// collectInitiator folds fabric recovery counters into cs.
func collectInitiator(cs *metrics.CounterSet, l *nvmeof.Link, ini *nvmeof.Initiator) {
	cs.Add("link.drops", l.Drops[0]+l.Drops[1])
	cs.Add("of.retries", ini.Retries)
	cs.Add("of.requeues", ini.Requeues)
	cs.Add("of.reconnects", ini.Reconnects)
	cs.Add("of.failures", ini.Failures)
	cs.Add("of.stale_responses", ini.StaleResponses)
}

// collectReplicator folds degraded-mode counters into cs.
func collectReplicator(cs *metrics.CounterSet, rep *storfn.Replicator) {
	cs.Add("rep.degraded", rep.Degraded)
	cs.Add("rep.secondary_errors", rep.SecondaryErrors)
	cs.Add("rep.dirty_regions", uint64(rep.Dirty.Regions()))
	cs.Add("rep.dirty_blocks", rep.Dirty.Blocks())
}

// runFaultNVMetro runs the fast-path stack with plan injected at the
// device, optionally tuning the router's recovery policy first.
func runFaultNVMetro(o Options, plan *fault.Plan, tune func(*core.Router), cfg fio.Config, jobs int) faultRun {
	env, h := newBed(o, device.NullStore{})
	defer env.Close()
	h.Dev.InjectFaults(plan.Injector("device"))
	v := h.NewVM(4, 512<<20)
	router := core.NewRouter(env, h.Params.Router, []*sim.Thread{h.HostThread("router")})
	if tune != nil {
		tune(router)
	}
	vc := router.Attach(v, device.WholeNamespace(h.Dev, 1))
	disk := vm.NewNVMeDisk(v, vc, 128, h.Params.Driver)

	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := faultRun{res: fio.Run(env, h.CPU, targets, cfg)}
	out.drained = drainOutstanding(env, vc.Outstanding)
	collectDevice(&out.counters, "dev", h.Dev)
	collectRouter(&out.counters, router)
	out.counters.Add("fio.errors", out.res.Errors)
	return out
}

// runFaultMDev runs the MDev baseline with media errors injected at the
// device (MDev has no drop recovery, so plans must keep completions
// flowing).
func runFaultMDev(o Options, plan *fault.Plan, cfg fio.Config, jobs int) faultRun {
	env, h := newBed(o, device.NullStore{})
	defer env.Close()
	h.Dev.InjectFaults(plan.Injector("device"))
	v := h.NewVM(4, 512<<20)
	disk := stack.NewMDev(h).Provision(v, device.WholeNamespace(h.Dev, 1))
	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := faultRun{res: fio.Run(env, h.CPU, targets, cfg), drained: true}
	collectDevice(&out.counters, "dev", h.Dev)
	out.counters.Add("fio.errors", out.res.Errors)
	return out
}

// runFaultRepl runs the replication stack: local fast path plus the
// Replicator UIF mirroring to a remote device over the fabric. plan's
// media rules are injected at the remote device and its outages on the
// link, so secondary-leg failures exercise degraded mode.
func runFaultRepl(o Options, plan *fault.Plan, tune func(*core.Router), cfg fio.Config, jobs int) faultRun {
	env, h := newBed(o, device.NullStore{})
	defer env.Close()
	p := h.Params
	v := h.NewVM(4, 512<<20)
	router := core.NewRouter(env, p.Router, []*sim.Thread{h.HostThread("router")})
	if tune != nil {
		tune(router)
	}
	vc := router.Attach(v, device.WholeNamespace(h.Dev, 1))
	prog, _ := storfn.ReplicatorClassifier(vc.Partition())
	if err := vc.LoadClassifier(prog); err != nil {
		panic(err)
	}
	remote := stack.NewRemoteHost(env, 4, p.Device, device.NullStore{})
	remote.Dev.InjectFaults(plan.Injector("remote-device"))
	remote.Link.ApplyPlan(plan)
	ini := remote.Secondary()(vc.Partition()).(*nvmeof.Initiator)
	ring := blockdev.NewURing(env, ini, p.URing)
	fw := uif.NewFramework(env, p.UIF, []*sim.Thread{h.HostThread("uif")})
	rep := storfn.NewReplicator()
	fw.Attach(vc.AttachUIF(512), rep, ring)
	disk := vm.NewNVMeDisk(v, vc, 128, p.Driver)

	var targets []fio.Target
	for i := 0; i < jobs; i++ {
		targets = append(targets, fio.Target{Disk: disk, VM: v, VCPU: v.VCPU(i % v.NumVCPUs())})
	}
	out := faultRun{res: fio.Run(env, h.CPU, targets, cfg)}
	out.drained = drainOutstanding(env, vc.Outstanding)
	collectDevice(&out.counters, "rdev", remote.Dev)
	collectRouter(&out.counters, router)
	collectInitiator(&out.counters, remote.Link, ini)
	collectReplicator(&out.counters, rep)
	out.counters.Add("fio.errors", out.res.Errors)
	return out
}

// faultRates returns the media-error sweep grid.
func faultRates(o Options) []float64 {
	if o.Quick {
		return []float64{0, 0.01}
	}
	return []float64{0, 0.001, 0.01, 0.05}
}

// faultSweep is the media-error-rate sweep: throughput holds and every
// injected error surfaces as a guest-visible completion on every stack.
func faultSweep(o Options) *Table {
	rates := faultRates(o)
	cfg := faultCfg(o)
	t := &Table{ID: "fault-sweep", Title: "Media-error sweep: guest-visible errors per 1000 ops", Unit: "errors/kop"}
	for _, r := range rates {
		t.Cols = append(t.Cols, fmt.Sprintf("%.1f%%", r*100))
	}
	type run func(rate float64) faultRun
	stacks := []struct {
		name string
		run  run
	}{
		{"NVMetro", func(rate float64) faultRun {
			return runFaultNVMetro(o, fault.NewPlan(o.Seed).WithMediaErrors(rate), nil, cfg, 4)
		}},
		{"MDev", func(rate float64) faultRun {
			return runFaultMDev(o, fault.NewPlan(o.Seed).WithMediaErrors(rate), cfg, 4)
		}},
	}
	// Shards: one per (stack, rate) grid cell; each row merges its cells in
	// rate order after the group runs.
	g := o.group()
	runs := make([][]*faultRun, len(stacks))
	for i, s := range stacks {
		run := s.run
		for _, rate := range rates {
			rate := rate
			runs[i] = append(runs[i], shard(g, func() faultRun { return run(rate) }))
		}
	}
	g.Run()
	for i, s := range stacks {
		var cells []float64
		for _, fr := range runs[i] {
			perKop := 0.0
			if fr.res.Ops > 0 {
				perKop = float64(fr.res.Errors) / float64(fr.res.Ops) * 1e3
			}
			if !fr.drained {
				perKop = -1 // hang marker; must never happen
			}
			cells = append(cells, perKop)
		}
		t.Add(s.name, cells...)
	}
	t.Notes = "errors surface as completions; -1 would mean a hang (commands stuck in flight)"
	return t
}

// tightRouter gives the fast path an aggressive recovery policy so drop
// and stuck faults resolve within the measurement window. The reclaim
// window stays above the largest injected stuck delay: a tag recycled
// before its late completion arrives could be misattributed.
func tightRouter(r *core.Router) {
	r.FastPathDeadline = 2 * sim.Millisecond
	r.HTagReclaim = 8 * sim.Millisecond
}

// faultRecovery exercises the fast-path drop/stuck recovery machinery.
func faultRecovery(o Options) *Table {
	cfg := faultCfg(o)
	t := &Table{
		ID:    "fault-recovery",
		Title: "Fast-path recovery under dropped/stuck completions",
		Cols:  []string{"injected", "hq_timeouts", "stale_comps", "guest_errors", "drained"},
	}
	rows := []struct {
		name string
		plan *fault.Plan
	}{
		{"drop 2%", fault.NewPlan(o.Seed).WithDrops(0.02, 0)},
		{"stuck 2% (5ms)", fault.NewPlan(o.Seed).WithStuck(0.02, 0, 5*sim.Millisecond)},
	}
	g := o.group()
	runs := make([]*faultRun, len(rows))
	for i, row := range rows {
		plan := row.plan
		runs[i] = shard(g, func() faultRun { return runFaultNVMetro(o, plan, tightRouter, cfg, 4) })
	}
	g.Run()
	for i, row := range rows {
		fr := *runs[i]
		drained := 0.0
		if fr.drained {
			drained = 1
		}
		t.Add(row.name,
			float64(fr.counters.Get("dev.injected")),
			float64(fr.counters.Get("rt.hq_timeouts")),
			float64(fr.counters.Get("rt.stale_comps")),
			float64(fr.counters.Get("rt.guest_errors")),
			drained)
	}
	t.Notes = "dropped completions resolve via deadline abort; stuck ones arrive late and are counted stale"
	return t
}

// faultReplication exercises degraded-mode mirroring: remote media errors
// and a fabric outage must never fail or hang a guest write.
func faultReplication(o Options) *Table {
	cfg := faultCfg(o)
	cfg.Mode = fio.RandWrite // only writes are mirrored
	warm, _ := o.windows()
	outageAt := sim.Time(0).Add(warm + 2*sim.Millisecond)
	t := &Table{
		ID:    "fault-repl",
		Title: "Replication resilience: degraded writes and dirty-region tracking",
		Cols:  []string{"kIOPS", "degraded", "dirty_blocks", "requeues", "failures", "drained"},
	}
	rows := []struct {
		name string
		plan *fault.Plan
	}{
		{"remote 1% media", fault.NewPlan(o.Seed).WithMediaErrors(0.01)},
		{"remote 1% media + 10ms outage", fault.NewPlan(o.Seed).WithMediaErrors(0.01).WithOutage(outageAt, 10*sim.Millisecond)},
	}
	g := o.group()
	runs := make([]*faultRun, len(rows))
	for i, row := range rows {
		plan := row.plan
		runs[i] = shard(g, func() faultRun { return runFaultRepl(o, plan, nil, cfg, 4) })
	}
	g.Run()
	for i, row := range rows {
		fr := *runs[i]
		drained := 0.0
		if fr.drained {
			drained = 1
		}
		t.Add(row.name,
			fr.res.KIOPS(),
			float64(fr.counters.Get("rep.degraded")),
			float64(fr.counters.Get("rep.dirty_blocks")),
			float64(fr.counters.Get("of.requeues")),
			float64(fr.counters.Get("of.failures")),
			drained)
	}
	t.Notes = "guest writes complete from the primary alone when the secondary leg fails"
	return t
}
