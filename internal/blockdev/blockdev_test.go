package blockdev_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

func bed() (*sim.Env, *sim.CPU, *blockdev.NVMeBlockDev, *device.MemStore, *sim.Thread) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	store := device.NewMemStore(512)
	dev := device.New(env, p, store)
	bdev := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(dev, 1), cpu, 3, blockdev.DefaultCosts())
	return env, cpu, bdev, store, cpu.ThreadOn(0, "test")
}

func runP(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	env.Go("t", func(p *sim.Proc) { fn(p); ok = true; env.Stop() })
	env.RunUntil(sim.Time(60 * sim.Second))
	if !ok {
		t.Fatal("did not finish")
	}
	env.Close()
}

func wait(p *sim.Proc, th *sim.Thread, d blockdev.BlockDevice, b *blockdev.Bio) nvme.Status {
	c := sim.NewCond(p.Env())
	var st nvme.Status
	done := false
	b.OnDone = func(s nvme.Status) { st = s; done = true; c.Signal(nil) }
	d.SubmitBio(p, th, b)
	for !done {
		c.Wait()
	}
	return st
}

func TestLargeBioUsesPRPList(t *testing.T) {
	env, _, bdev, store, th := bed()
	runP(t, env, func(p *sim.Proc) {
		// 64 KiB needs a PRP list (16 pages).
		src := make([]byte, 64<<10)
		for i := range src {
			src[i] = byte(i * 7)
		}
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 1000, Data: append([]byte{}, src...)}); !st.OK() {
			t.Fatalf("write: %v", st)
		}
		got := make([]byte, len(src))
		store.ReadBlocks(1000, got)
		if !bytes.Equal(got, src) {
			t.Fatal("64K write corrupted")
		}
		rd := make([]byte, len(src))
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioRead, Sector: 1000, Data: rd}); !st.OK() {
			t.Fatalf("read: %v", st)
		}
		if !bytes.Equal(rd, src) {
			t.Fatal("64K read corrupted")
		}
	})
}

func TestManyOutstandingBiosPipelining(t *testing.T) {
	env, _, bdev, _, th := bed()
	runP(t, env, func(p *sim.Proc) {
		const n = 64
		done := 0
		c := sim.NewCond(env)
		start := p.Now()
		for i := 0; i < n; i++ {
			b := &blockdev.Bio{Op: blockdev.BioRead, Sector: uint64(i * 8), Data: make([]byte, 4096)}
			b.OnDone = func(st nvme.Status) { done++; c.Signal(nil) }
			bdev.SubmitBio(p, th, b)
		}
		for done < n {
			c.Wait()
		}
		if el := p.Now().Sub(start); el > sim.Duration(n)*90*sim.Microsecond/4 {
			t.Fatalf("no pipelining: %v", el)
		}
		if bdev.Submitted != n || bdev.Completed != n {
			t.Fatalf("stats %d/%d", bdev.Submitted, bdev.Completed)
		}
	})
}

func TestDiscardAndFlushThroughBlockLayer(t *testing.T) {
	env, _, bdev, store, th := bed()
	runP(t, env, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{1}, 64*512)
		wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 0, Data: data})
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioFlush}); !st.OK() {
			t.Fatalf("flush: %v", st)
		}
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioDiscard, Sector: 0, NSect: 64}); !st.OK() {
			t.Fatalf("discard: %v", st)
		}
		got := make([]byte, 512)
		store.ReadBlocks(0, got)
		if !bytes.Equal(got, make([]byte, 512)) {
			t.Fatal("discard did not trim")
		}
	})
}

func TestURingUserDataAndOrdering(t *testing.T) {
	env, cpu, bdev, _, th := bed()
	_ = cpu
	ring := blockdev.NewURing(env, bdev, blockdev.DefaultURingCosts())
	runP(t, env, func(p *sim.Proc) {
		for i := uint64(0); i < 16; i++ {
			ring.Submit(p, th, blockdev.BioWrite, i*8, make([]byte, 4096), 1000+i)
		}
		seen := map[uint64]bool{}
		for len(seen) < 16 {
			for _, cqe := range ring.Reap(p, th, 4) {
				if cqe.UserData < 1000 || cqe.UserData >= 1016 {
					t.Fatalf("bad user data %d", cqe.UserData)
				}
				if !cqe.Status.OK() {
					t.Fatalf("cqe %v", cqe.Status)
				}
				seen[cqe.UserData] = true
			}
			p.Sleep(5 * sim.Microsecond)
		}
		if ring.Pending() != 0 {
			t.Fatal("stale completions")
		}
	})
}
