// Package blockdev models the host kernel's block layer: bios, the
// NVMe-backed block device (driver submission plus interrupt-context
// completion), an io_uring-style asynchronous submission ring, and the DMA
// buffer pool that backs kernel-space data. Device-mapper targets stack on
// the BlockDevice interface (package dm), and the vhost/QEMU baselines as
// well as NVMetro's kernel path and UIFs all submit through here.
package blockdev

import (
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// SectorSize is the kernel sector unit (512 bytes, as in Linux).
const SectorSize = 512

// BioOp is a block operation type.
type BioOp uint8

// Bio operations.
const (
	BioRead BioOp = iota
	BioWrite
	BioFlush
	BioDiscard
)

func (o BioOp) String() string {
	switch o {
	case BioRead:
		return "read"
	case BioWrite:
		return "write"
	case BioFlush:
		return "flush"
	case BioDiscard:
		return "discard"
	}
	return "?"
}

// Bio is one block I/O request in host kernel space.
type Bio struct {
	Op     BioOp
	Sector uint64 // first 512-byte sector
	Data   []byte // host buffer (nil for flush/discard; Sectors for discard length)
	NSect  uint32 // sector count for data-less ops
	// OnDone runs in completion (interrupt or worker) context and must not
	// block on simulation primitives.
	OnDone func(nvme.Status)
}

// Sectors returns the bio's length in sectors.
func (b *Bio) Sectors() uint32 {
	if b.Data != nil {
		return uint32(len(b.Data) / SectorSize)
	}
	return b.NSect
}

// BlockDevice is a host-side block device: the stackable unit of the block
// layer. Submission charges the calling thread; completion is asynchronous.
type BlockDevice interface {
	// SubmitBio queues the bio. p/thread identify the submitting kernel
	// context for CPU accounting.
	SubmitBio(p *sim.Proc, thread *sim.Thread, b *Bio)
	// NumSectors is the device size in 512-byte sectors.
	NumSectors() uint64
}

// Costs models per-bio block layer CPU costs (submission path through the
// request queue and NVMe driver; completion handling in IRQ context).
type Costs struct {
	Submit   sim.Duration
	Complete sim.Duration
}

// DefaultCosts returns the calibrated block layer cost model.
func DefaultCosts() Costs {
	return Costs{Submit: 3 * sim.Microsecond, Complete: 2 * sim.Microsecond}
}
