package blockdev_test

import (
	"testing"

	"nvmetro/internal/blockdev"
	"nvmetro/internal/device"
	"nvmetro/internal/fault"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// faultBed is bed() with a fault plan injected at the device and a tight
// recovery policy so timeouts resolve in microseconds, not milliseconds.
func faultBed(plan *fault.Plan) (*sim.Env, *blockdev.NVMeBlockDev, *sim.Thread) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 4)
	p := device.Default970EvoPlus()
	p.JitterPct, p.TailProb = 0, 0
	dev := device.New(env, p, device.NewMemStore(512))
	dev.InjectFaults(plan.Injector("device"))
	bdev := blockdev.NewNVMeBlockDev(env, device.WholeNamespace(dev, 1), cpu, 3, blockdev.DefaultCosts())
	bdev.SetRecovery(blockdev.Recovery{
		Timeout:    500 * sim.Microsecond,
		MaxRetries: 3,
		Backoff:    50 * sim.Microsecond,
		Reclaim:    2 * sim.Millisecond,
	})
	return env, bdev, cpu.ThreadOn(0, "test")
}

// A dropped completion must trigger the deadline, and the bounded retry
// must succeed once the fault budget is exhausted.
func TestTimeoutRetrySucceeds(t *testing.T) {
	env, bdev, th := faultBed(fault.NewPlan(1).WithDrops(1, 2))
	runP(t, env, func(p *sim.Proc) {
		st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if !st.OK() {
			t.Fatalf("write after retries: %v", st)
		}
	})
	if bdev.Timeouts != 2 || bdev.Retries != 2 {
		t.Fatalf("timeouts=%d retries=%d, want 2/2", bdev.Timeouts, bdev.Retries)
	}
	if bdev.Aborts != 0 || bdev.Completed != 1 {
		t.Fatalf("aborts=%d completed=%d", bdev.Aborts, bdev.Completed)
	}
}

// With every completion dropped, the bio must fail with AbortRequested
// after MaxRetries resubmissions — never hang.
func TestTimeoutExhaustsRetries(t *testing.T) {
	env, bdev, th := faultBed(fault.NewPlan(1).WithDrops(1, 0))
	runP(t, env, func(p *sim.Proc) {
		st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)})
		if st != nvme.SCAbortRequested {
			t.Fatalf("status %v, want AbortRequested", st)
		}
	})
	if bdev.Timeouts != 4 || bdev.Retries != 3 || bdev.Aborts != 1 {
		t.Fatalf("timeouts=%d retries=%d aborts=%d, want 4/3/1", bdev.Timeouts, bdev.Retries, bdev.Aborts)
	}
}

// A stuck completion arrives after the deadline: the retry completes the
// bio, and the late original is absorbed by the CID quarantine rather than
// being misattributed.
func TestStuckCompletionCountedStale(t *testing.T) {
	env, bdev, th := faultBed(fault.NewPlan(1).WithStuck(1, 1, sim.Millisecond))
	// Leave headroom above the deadline for the retry even if the device
	// head-of-line blocks behind the stuck original's hold time.
	rec := bdev.Recovery()
	rec.Timeout = 600 * sim.Microsecond
	bdev.SetRecovery(rec)
	runP(t, env, func(p *sim.Proc) {
		st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioRead, Sector: 8, Data: make([]byte, 4096)})
		if !st.OK() {
			t.Fatalf("read: %v", st)
		}
		// Let the stuck original surface.
		p.Sleep(5 * sim.Millisecond)
	})
	if bdev.Timeouts != 1 || bdev.Retries != 1 {
		t.Fatalf("timeouts=%d retries=%d, want 1/1", bdev.Timeouts, bdev.Retries)
	}
	if bdev.Stale != 1 || bdev.Reclaimed != 0 {
		t.Fatalf("stale=%d reclaimed=%d, want 1/0", bdev.Stale, bdev.Reclaimed)
	}
}

// A completion surfacing after its CID was quarantined AND reclaimed —
// with the tag already reissued to a new command — must be counted
// StaleReclaimed and dropped, never delivered to the tag's new occupant.
// The generation stamp carried in the command (and echoed in the
// completion) is what disambiguates the two uses of the tag.
func TestReclaimedTagNotMisattributed(t *testing.T) {
	env, bdev, th := faultBed(fault.NewPlan(1).WithStuck(1, 1, 3*sim.Millisecond))
	// No retries and a short quarantine: the stuck command's tag is back in
	// circulation long before its held completion surfaces at ~3 ms.
	if err := bdev.SetRecovery(blockdev.Recovery{
		Timeout:    200 * sim.Microsecond,
		MaxRetries: 0,
		Backoff:    50 * sim.Microsecond,
		Reclaim:    500 * sim.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	runP(t, env, func(p *sim.Proc) {
		// The write's completion is held for 3 ms; it aborts at ~200 µs and
		// its CID is quarantined, then reclaimed at ~700 µs.
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 8, Data: make([]byte, 4096)}); st != nvme.SCAbortRequested {
			t.Fatalf("stuck write: %v, want AbortRequested", st)
		}
		// Reissue the reclaimed tag, timed so the read is in flight when the
		// held completion for the tag's previous occupant finally surfaces.
		p.Sleep(2750 * sim.Microsecond)
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioRead, Sector: 8, Data: make([]byte, 4096)}); !st.OK() {
			t.Fatalf("read on reused tag: %v", st)
		}
		// Let any residual completions surface.
		p.Sleep(5 * sim.Millisecond)
	})
	if bdev.Aborts != 1 || bdev.Reclaimed != 1 {
		t.Fatalf("aborts=%d reclaimed=%d, want 1/1", bdev.Aborts, bdev.Reclaimed)
	}
	if bdev.StaleReclaimed != 1 {
		t.Fatalf("stale_reclaimed=%d, want 1: the held completion was not absorbed", bdev.StaleReclaimed)
	}
	if bdev.Stale != 0 {
		t.Fatalf("stale=%d: the held completion matched a live quarantine entry", bdev.Stale)
	}
	if bdev.Completed != 2 {
		t.Fatalf("completed=%d, want exactly the abort and the reissued read", bdev.Completed)
	}
}

// Install-time validation of the driver's recovery policy.
func TestRecoveryValidation(t *testing.T) {
	env, bdev, _ := faultBed(fault.NewPlan(1))
	defer env.Close()
	old := bdev.Recovery()
	if err := bdev.SetRecovery(blockdev.Recovery{Timeout: sim.Millisecond, MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
	if err := bdev.SetRecovery(blockdev.Recovery{Timeout: -sim.Millisecond}); err == nil {
		t.Fatal("negative Timeout accepted")
	}
	// Reclaim shorter than the timeout reopens the misattribution window:
	// a tag could recirculate while its completion is merely late.
	if err := bdev.SetRecovery(blockdev.Recovery{
		Timeout: sim.Millisecond,
		Reclaim: 500 * sim.Microsecond,
	}); err == nil {
		t.Fatal("Reclaim < Timeout accepted")
	}
	if bdev.Recovery() != old {
		t.Fatal("rejected policy replaced the active one")
	}
}

// Media errors are final statuses, not lost completions: they propagate to
// the issuer without consuming the retry budget.
func TestMediaErrorPropagates(t *testing.T) {
	env, bdev, th := faultBed(fault.NewPlan(1).WithMediaErrors(1))
	runP(t, env, func(p *sim.Proc) {
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioRead, Sector: 0, Data: make([]byte, 4096)}); st != nvme.SCUnrecoveredRead {
			t.Fatalf("read: %v", st)
		}
		if st := wait(p, th, bdev, &blockdev.Bio{Op: blockdev.BioWrite, Sector: 0, Data: make([]byte, 4096)}); st != nvme.SCWriteFault {
			t.Fatalf("write: %v", st)
		}
	})
	if bdev.Timeouts != 0 || bdev.Retries != 0 {
		t.Fatalf("media errors consumed recovery: timeouts=%d retries=%d", bdev.Timeouts, bdev.Retries)
	}
}
