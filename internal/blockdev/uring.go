package blockdev

import (
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// URing is an io_uring-style asynchronous submission interface over a
// BlockDevice: cheap submissions from user context, completions reaped from
// a queue by polling (no syscall per completion). It is what the UIF
// framework and the QEMU baseline use for host file I/O.
type URing struct {
	env    *sim.Env
	dev    BlockDevice
	costs  URingCosts
	cq     []URingCQE
	OnComp func() // optional wake for sleeping reapers

	// Stats
	Submitted, Reaped uint64
}

// URingCQE is one completion entry.
type URingCQE struct {
	UserData uint64
	Status   nvme.Status
}

// URingCosts models the submission/reap overhead. io_uring's advantage over
// classic syscalls is the small constant here.
type URingCosts struct {
	Submit sim.Duration // SQE prep + ring doorbell (amortized syscall)
	Reap   sim.Duration // per-CQE handling
}

// DefaultURingCosts returns the calibrated io_uring cost model.
func DefaultURingCosts() URingCosts {
	return URingCosts{Submit: 900 * sim.Nanosecond, Reap: 300 * sim.Nanosecond}
}

// NewURing creates a ring over dev.
func NewURing(env *sim.Env, dev BlockDevice, costs URingCosts) *URing {
	return &URing{env: env, dev: dev, costs: costs}
}

// Submit queues an asynchronous read/write of data at sector.
func (u *URing) Submit(p *sim.Proc, thread *sim.Thread, op BioOp, sector uint64, data []byte, userData uint64) {
	thread.Exec(p, u.costs.Submit)
	u.Submitted++
	bio := &Bio{Op: op, Sector: sector, Data: data}
	bio.OnDone = func(st nvme.Status) {
		u.cq = append(u.cq, URingCQE{UserData: userData, Status: st})
		if u.OnComp != nil {
			u.OnComp()
		}
	}
	u.dev.SubmitBio(p, thread, bio)
}

// Reap drains up to max completion entries (0 = all), charging the reaping
// thread per entry.
func (u *URing) Reap(p *sim.Proc, thread *sim.Thread, max int) []URingCQE {
	n := len(u.cq)
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]URingCQE, n)
	copy(out, u.cq)
	u.cq = u.cq[n:]
	u.Reaped += uint64(n)
	thread.Exec(p, u.costs.Reap*sim.Duration(n))
	return out
}

// Pending reports queued-but-unreaped completions.
func (u *URing) Pending() int { return len(u.cq) }
