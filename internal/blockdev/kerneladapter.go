package blockdev

import (
	"fmt"

	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// KernelAdapter implements NVMetro's kernel I/O path (core.KernelTarget):
// it translates mediated NVMe commands into bios against any BlockDevice —
// including device-mapper stacks — copying data between guest memory and
// kernel buffers. A small worker pool provides the kernel process context.
type KernelAdapter struct {
	env     *sim.Env
	dev     BlockDevice
	shift   uint8 // device LBA shift for command interpretation
	queue   []kaWork
	wake    *sim.Cond
	workers int

	// Stats
	Translated uint64
}

type kaWork struct {
	cmd  nvme.Command
	mem  nvme.Memory
	done func(nvme.Status)
}

// NewKernelAdapter creates the adapter with the given worker threads.
func NewKernelAdapter(env *sim.Env, dev BlockDevice, lbaShift uint8, threads []*sim.Thread) *KernelAdapter {
	ka := &KernelAdapter{env: env, dev: dev, shift: lbaShift, wake: sim.NewCond(env), workers: len(threads)}
	for i, th := range threads {
		th := th
		env.Go(fmt.Sprintf("kernel/nvmetro-kq%d", i), func(p *sim.Proc) { ka.worker(p, th) })
	}
	return ka
}

// Submit implements core.KernelTarget.
func (ka *KernelAdapter) Submit(cmd nvme.Command, mem nvme.Memory, done func(nvme.Status)) {
	ka.queue = append(ka.queue, kaWork{cmd: cmd, mem: mem, done: done})
	ka.wake.Signal(nil)
}

func (ka *KernelAdapter) worker(p *sim.Proc, th *sim.Thread) {
	for {
		if len(ka.queue) == 0 {
			ka.wake.Wait()
			continue
		}
		w := ka.queue[0]
		ka.queue = ka.queue[1:]
		ka.process(p, th, w)
	}
}

func (ka *KernelAdapter) process(p *sim.Proc, th *sim.Thread, w kaWork) {
	ka.Translated++
	cmd := w.cmd
	switch cmd.Opcode() {
	case nvme.OpFlush:
		ka.submitWait(p, th, &Bio{Op: BioFlush}, w.done)
	case nvme.OpDSM:
		nsect := uint32(uint64(cmd.Blocks()) << ka.shift / SectorSize)
		ka.submitWait(p, th, &Bio{Op: BioDiscard, Sector: cmd.SLBA() << ka.shift / SectorSize, NSect: nsect}, w.done)
	case nvme.OpRead, nvme.OpWrite:
		nbytes := cmd.Blocks() << ka.shift
		segs, err := nvme.WalkPRP(w.mem, cmd.PRP1(), cmd.PRP2(), nbytes)
		if err != nil {
			w.done(nvme.SCDataXferError)
			return
		}
		buf := make([]byte, nbytes)
		sector := cmd.SLBA() << ka.shift / SectorSize
		if cmd.Opcode() == nvme.OpWrite {
			if err := nvme.ReadSegments(w.mem, segs, buf); err != nil {
				w.done(nvme.SCDataXferError)
				return
			}
			ka.submitWait(p, th, &Bio{Op: BioWrite, Sector: sector, Data: buf}, w.done)
		} else {
			ka.submitWait(p, th, &Bio{Op: BioRead, Sector: sector, Data: buf}, func(st nvme.Status) {
				if st.OK() {
					if err := nvme.WriteSegments(w.mem, segs, buf); err != nil {
						st = nvme.SCDataXferError
					}
				}
				w.done(st)
			})
		}
	default:
		// The kernel path only understands Linux storage semantics; the
		// paper notes NVMe- or vendor-specific commands must use the fast
		// path instead.
		w.done(nvme.SCInvalidOpcode)
	}
}

// submitWait submits the bio; the callback chain stays asynchronous so the
// worker can pipeline further requests.
func (ka *KernelAdapter) submitWait(p *sim.Proc, th *sim.Thread, b *Bio, done func(nvme.Status)) {
	b.OnDone = done
	ka.dev.SubmitBio(p, th, b)
}
