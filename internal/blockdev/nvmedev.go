package blockdev

import (
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/guestmem"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// dmaPool hands out page-aligned DMA buffers in host kernel memory with
// per-size free lists, so steady-state I/O allocates nothing.
type dmaPool struct {
	mem  *guestmem.Memory
	free map[int][][]uint64 // npages -> list of page sets
}

func newDMAPool(mem *guestmem.Memory) *dmaPool {
	return &dmaPool{mem: mem, free: make(map[int][][]uint64)}
}

func (p *dmaPool) get(npages int) []uint64 {
	l := p.free[npages]
	if n := len(l); n > 0 {
		pages := l[n-1]
		p.free[npages] = l[:n-1]
		return pages
	}
	base := p.mem.MustAllocPages(npages)
	pages := make([]uint64, npages)
	for i := range pages {
		pages[i] = base + uint64(i)*guestmem.PageSize
	}
	return pages
}

func (p *dmaPool) put(pages []uint64) {
	p.free[len(pages)] = append(p.free[len(pages)], pages)
}

// NVMeBlockDev is the host NVMe driver's block device: bios are translated
// to NVMe commands on a dedicated host queue pair, data is bounced through
// kernel DMA buffers, and completions are handled in a simulated interrupt
// context thread.
type NVMeBlockDev struct {
	env      *sim.Env
	dev      *device.Device
	nsid     uint32
	part     device.Partition
	costs    Costs
	qp       *nvme.QueuePair
	hostmem  *guestmem.Memory
	pool     *dmaPool
	irq      *sim.Thread
	irqCond  *sim.Cond
	inflight map[uint16]*pendingBio
	freeCIDs []uint16
	waitCID  *sim.Cond
	shift    uint8

	// Stats
	Submitted, Completed uint64
}

type pendingBio struct {
	bio       *Bio
	pages     []uint64
	listPages []uint64
	base      uint64
}

// NewNVMeBlockDev creates the host block device over a partition of the
// physical device. irqCore hosts the interrupt handler context.
func NewNVMeBlockDev(env *sim.Env, part device.Partition, cpu *sim.CPU, irqCore int, costs Costs) *NVMeBlockDev {
	hostmem := guestmem.New(512 << 20)
	d := &NVMeBlockDev{
		env:      env,
		dev:      part.Dev,
		nsid:     part.NSID,
		part:     part,
		costs:    costs,
		hostmem:  hostmem,
		pool:     newDMAPool(hostmem),
		irq:      cpu.ThreadOn(irqCore, "kernel/irq"),
		irqCond:  sim.NewCond(env),
		inflight: make(map[uint16]*pendingBio),
		waitCID:  sim.NewCond(env),
		shift:    part.Dev.Params().LBAShift,
	}
	d.qp = part.Dev.CreateQueuePair(1024, hostmem)
	for i := uint16(0); i < 1023; i++ {
		d.freeCIDs = append(d.freeCIDs, i)
	}
	d.qp.CQ.OnPost = func() { d.irqCond.Signal(nil) }
	env.Go(fmt.Sprintf("kernel/nvme-irq-ns%d", part.NSID), d.irqLoop)
	return d
}

// NumSectors implements BlockDevice.
func (d *NVMeBlockDev) NumSectors() uint64 {
	return d.part.Blocks << d.shift / SectorSize
}

// lba converts a 512-byte sector to a device LBA within the partition.
func (d *NVMeBlockDev) lba(sector uint64) uint64 {
	return d.part.Start + sector*SectorSize>>d.shift
}

// SubmitBio implements BlockDevice.
func (d *NVMeBlockDev) SubmitBio(p *sim.Proc, thread *sim.Thread, b *Bio) {
	thread.Exec(p, d.costs.Submit)
	for len(d.freeCIDs) == 0 || d.qp.SQ.Full() {
		d.waitCID.Wait()
	}
	cid := d.freeCIDs[len(d.freeCIDs)-1]
	d.freeCIDs = d.freeCIDs[:len(d.freeCIDs)-1]

	pend := &pendingBio{bio: b}
	var cmd nvme.Command
	switch b.Op {
	case BioFlush:
		cmd = nvme.NewFlush(cid, d.nsid)
	case BioDiscard:
		cmd.SetOpcode(nvme.OpDSM)
		cmd.SetCID(cid)
		cmd.SetNSID(d.nsid)
		cmd.SetSLBA(d.lba(b.Sector))
		cmd.SetNLB(uint16(uint64(b.NSect)*SectorSize>>d.shift - 1))
	case BioRead, BioWrite:
		npages := (len(b.Data) + guestmem.PageSize - 1) / guestmem.PageSize
		pend.pages = d.pool.get(npages)
		pend.base = pend.pages[0]
		if b.Op == BioWrite {
			// Copy data into the DMA buffer (kernel bounce).
			for i, pg := range pend.pages {
				off := i * guestmem.PageSize
				end := off + guestmem.PageSize
				if end > len(b.Data) {
					end = len(b.Data)
				}
				d.hostmem.WriteAt(b.Data[off:end], pg)
			}
		}
		op := nvme.OpRead
		if b.Op == BioWrite {
			op = nvme.OpWrite
		}
		blocks := uint32(len(b.Data)) >> d.shift
		prp1, prp2, err := nvme.BuildPRP(d.hostmem, pend.pages, func() uint64 {
			pg := d.pool.get(1)
			pend.listPages = append(pend.listPages, pg[0])
			return pg[0]
		})
		if err != nil {
			panic(err)
		}
		cmd = nvme.NewRW(op, cid, d.nsid, d.lba(b.Sector), blocks, prp1, prp2)
	}
	d.inflight[cid] = pend
	if !d.qp.SQ.Push(&cmd) {
		panic("blockdev: SQ full after check")
	}
	d.Submitted++
	d.dev.Ring(d.qp.SQ.ID)
}

func (d *NVMeBlockDev) irqLoop(p *sim.Proc) {
	var e nvme.Completion
	for {
		d.irqCond.Wait()
		for d.qp.CQ.Pop(&e) {
			d.irq.Exec(p, d.costs.Complete)
			cid := e.CID()
			pend := d.inflight[cid]
			delete(d.inflight, cid)
			d.freeCIDs = append(d.freeCIDs, cid)
			d.waitCID.Signal(nil)
			if pend == nil {
				continue
			}
			if pend.bio.Op == BioRead && e.Status().OK() {
				for i, pg := range pend.pages {
					off := i * guestmem.PageSize
					end := off + guestmem.PageSize
					if end > len(pend.bio.Data) {
						end = len(pend.bio.Data)
					}
					d.hostmem.ReadAt(pend.bio.Data[off:end], pg)
				}
			}
			if pend.pages != nil {
				d.pool.put(pend.pages)
			}
			for _, lp := range pend.listPages {
				d.pool.put([]uint64{lp})
			}
			d.Completed++
			if pend.bio.OnDone != nil {
				pend.bio.OnDone(e.Status())
			}
		}
	}
}
