package blockdev

import (
	"fmt"

	"nvmetro/internal/device"
	"nvmetro/internal/guestmem"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
)

// dmaPool hands out page-aligned DMA buffers in host kernel memory with
// per-size free lists, so steady-state I/O allocates nothing.
type dmaPool struct {
	mem  *guestmem.Memory
	free map[int][][]uint64 // npages -> list of page sets
}

func newDMAPool(mem *guestmem.Memory) *dmaPool {
	return &dmaPool{mem: mem, free: make(map[int][][]uint64)}
}

func (p *dmaPool) get(npages int) []uint64 {
	l := p.free[npages]
	if n := len(l); n > 0 {
		pages := l[n-1]
		p.free[npages] = l[:n-1]
		return pages
	}
	base := p.mem.MustAllocPages(npages)
	pages := make([]uint64, npages)
	for i := range pages {
		pages[i] = base + uint64(i)*guestmem.PageSize
	}
	return pages
}

func (p *dmaPool) put(pages []uint64) {
	p.free[len(pages)] = append(p.free[len(pages)], pages)
}

// Recovery is the host driver's error-recovery policy: a per-command
// deadline with abort and bounded, exponentially backed-off resubmission —
// the sim equivalent of the kernel's nvme_timeout/abort/reset ladder. A
// timed-out CID is quarantined (not reused) until its late completion
// arrives or the reclaim window expires, so stale completions cannot be
// misattributed to a new command on the same tag.
type Recovery struct {
	Timeout    sim.Duration // per-command deadline (0 disables recovery)
	MaxRetries int          // resubmissions after a timeout before failing the bio
	Backoff    sim.Duration // first retry delay; doubles per attempt
	Reclaim    sim.Duration // quarantine before a lost CID may be reused
}

// DefaultRecovery returns a conservative policy: a deadline far above any
// loaded-device latency (bandwidth-bound sequential writes at QD512 can
// legitimately queue for ~20 ms in the model), so it only ever fires on
// genuinely lost completions. Fault experiments install tighter policies.
func DefaultRecovery() Recovery {
	return Recovery{
		Timeout:    100 * sim.Millisecond,
		MaxRetries: 3,
		Backoff:    100 * sim.Microsecond,
		Reclaim:    200 * sim.Millisecond,
	}
}

// Validate rejects policies that would silently misbehave. A reclaim
// window shorter than the command deadline is the dangerous one: a tag
// could be recycled while its first attempt is still within deadline,
// widening the misattribution window instead of bounding it.
func (rec Recovery) Validate() error {
	if rec.MaxRetries < 0 {
		return fmt.Errorf("blockdev: negative MaxRetries %d", rec.MaxRetries)
	}
	if rec.Timeout < 0 || rec.Backoff < 0 || rec.Reclaim < 0 {
		return fmt.Errorf("blockdev: negative recovery timer (timeout=%v backoff=%v reclaim=%v)",
			rec.Timeout, rec.Backoff, rec.Reclaim)
	}
	if rec.Timeout > 0 && rec.Reclaim < rec.Timeout {
		return fmt.Errorf("blockdev: reclaim window %v shorter than command deadline %v", rec.Reclaim, rec.Timeout)
	}
	return nil
}

// NVMeBlockDev is the host NVMe driver's block device: bios are translated
// to NVMe commands on a dedicated host queue pair, data is bounced through
// kernel DMA buffers, and completions are handled in a simulated interrupt
// context thread.
type NVMeBlockDev struct {
	env      *sim.Env
	dev      *device.Device
	nsid     uint32
	part     device.Partition
	costs    Costs
	rec      Recovery
	qp       *nvme.QueuePair
	hostmem  *guestmem.Memory
	pool     *dmaPool
	irq      *sim.Thread
	irqCond  *sim.Cond
	inflight map[uint16]*pendingBio
	freeCIDs []uint16
	waitCID  *sim.Cond
	shift    uint8

	lost      map[uint16]lostCID // quarantined CIDs: timed out, completion pending
	genSeq    uint32             // submission-generation sequence (stamped in CDW3)
	retryQ    []*pendingBio
	retryCond *sim.Cond

	// Stats
	Submitted, Completed uint64
	Timeouts             uint64 // commands that hit their deadline
	Retries              uint64 // resubmissions after a timeout
	Aborts               uint64 // bios failed after exhausting retries
	Stale                uint64 // late completions for quarantined CIDs
	StaleReclaimed       uint64 // late completions for already-reclaimed tags
	Reclaimed            uint64 // quarantined CIDs recycled without a completion
	PRPErrors            uint64 // bios failed at PRP build
	GuardErrors          uint64 // reads failing protection-info verification

	verifier ReadVerifier
}

// ReadVerifier checks read payloads against per-block protection info at
// the driver's completion boundary (satisfied by *integrity.SectorGuard).
type ReadVerifier interface {
	VerifySectors(sector uint64, data []byte) bool
}

// lostCID is one quarantined tag: the generation of the attempt that lost
// it, and when the quarantine began.
type lostCID struct {
	gen   uint32
	since sim.Time
}

// genDW is the otherwise-reserved command dword carrying the submission
// generation; the device echoes it in the completion's DW0 result, which
// is what lets the driver tell a reclaimed tag's late completion from its
// new occupant's.
const genDW = 3

type pendingBio struct {
	bio       *Bio
	pages     []uint64
	listPages []uint64
	base      uint64
	cmd       nvme.Command // retryable command image (CID rewritten per attempt)
	attempts  int          // submissions so far
	gen       uint32       // generation of the current attempt
}

// NewNVMeBlockDev creates the host block device over a partition of the
// physical device. irqCore hosts the interrupt handler context.
func NewNVMeBlockDev(env *sim.Env, part device.Partition, cpu *sim.CPU, irqCore int, costs Costs) *NVMeBlockDev {
	hostmem := guestmem.New(512 << 20)
	d := &NVMeBlockDev{
		env:      env,
		dev:      part.Dev,
		nsid:     part.NSID,
		part:     part,
		costs:    costs,
		hostmem:  hostmem,
		pool:     newDMAPool(hostmem),
		irq:      cpu.ThreadOn(irqCore, "kernel/irq"),
		irqCond:  sim.NewCond(env),
		inflight: make(map[uint16]*pendingBio),
		waitCID:  sim.NewCond(env),
		shift:    part.Dev.Params().LBAShift,

		rec:       DefaultRecovery(),
		lost:      make(map[uint16]lostCID),
		retryCond: sim.NewCond(env),
	}
	d.qp = part.Dev.CreateQueuePair(1024, hostmem)
	for i := uint16(0); i < 1023; i++ {
		d.freeCIDs = append(d.freeCIDs, i)
	}
	d.qp.CQ.OnPost = func() { d.irqCond.Signal(nil) }
	env.Go(fmt.Sprintf("kernel/nvme-irq-ns%d", part.NSID), d.irqLoop)
	env.Go(fmt.Sprintf("kernel/nvme-retry-ns%d", part.NSID), d.retryLoop)
	return d
}

// SetRecovery replaces the error-recovery policy (before or between I/O).
// Invalid policies are rejected and the previous policy stays active.
func (d *NVMeBlockDev) SetRecovery(rec Recovery) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	d.rec = rec
	return nil
}

// Recovery returns the active error-recovery policy.
func (d *NVMeBlockDev) Recovery() Recovery { return d.rec }

// SetVerifier installs a protection-info verifier on the read completion
// path (nil detaches). A read whose payload fails verification completes
// with a guard-check media error instead of delivering wrong data.
func (d *NVMeBlockDev) SetVerifier(v ReadVerifier) { d.verifier = v }

// Partition returns the device partition this block device covers.
func (d *NVMeBlockDev) Partition() device.Partition { return d.part }

// NumSectors implements BlockDevice.
func (d *NVMeBlockDev) NumSectors() uint64 {
	return d.part.Blocks << d.shift / SectorSize
}

// lba converts a 512-byte sector to a device LBA within the partition.
func (d *NVMeBlockDev) lba(sector uint64) uint64 {
	return d.part.Start + sector*SectorSize>>d.shift
}

// SubmitBio implements BlockDevice.
func (d *NVMeBlockDev) SubmitBio(p *sim.Proc, thread *sim.Thread, b *Bio) {
	thread.Exec(p, d.costs.Submit)
	for len(d.freeCIDs) == 0 || d.qp.SQ.Full() {
		d.waitCID.Wait()
	}
	cid := d.freeCIDs[len(d.freeCIDs)-1]
	d.freeCIDs = d.freeCIDs[:len(d.freeCIDs)-1]

	pend := &pendingBio{bio: b}
	var cmd nvme.Command
	switch b.Op {
	case BioFlush:
		cmd = nvme.NewFlush(cid, d.nsid)
	case BioDiscard:
		cmd.SetOpcode(nvme.OpDSM)
		cmd.SetCID(cid)
		cmd.SetNSID(d.nsid)
		cmd.SetSLBA(d.lba(b.Sector))
		cmd.SetNLB(uint16(uint64(b.NSect)*SectorSize>>d.shift - 1))
	case BioRead, BioWrite:
		npages := (len(b.Data) + guestmem.PageSize - 1) / guestmem.PageSize
		pend.pages = d.pool.get(npages)
		pend.base = pend.pages[0]
		if b.Op == BioWrite {
			// Copy data into the DMA buffer (kernel bounce).
			for i, pg := range pend.pages {
				off := i * guestmem.PageSize
				end := off + guestmem.PageSize
				if end > len(b.Data) {
					end = len(b.Data)
				}
				d.hostmem.WriteAt(b.Data[off:end], pg)
			}
		}
		op := nvme.OpRead
		if b.Op == BioWrite {
			op = nvme.OpWrite
		}
		blocks := uint32(len(b.Data)) >> d.shift
		prp1, prp2, err := nvme.BuildPRP(d.hostmem, pend.pages, func() uint64 {
			pg := d.pool.get(1)
			pend.listPages = append(pend.listPages, pg[0])
			return pg[0]
		})
		if err != nil {
			// A malformed transfer fails this one bio, not the whole sim.
			d.PRPErrors++
			d.releaseDMA(pend)
			d.freeCIDs = append(d.freeCIDs, cid)
			d.waitCID.Signal(nil)
			if b.OnDone != nil {
				b.OnDone(nvme.SCInternal)
			}
			return
		}
		cmd = nvme.NewRW(op, cid, d.nsid, d.lba(b.Sector), blocks, prp1, prp2)
	}
	pend.cmd = cmd
	d.push(cid, pend)
}

// push installs pend under cid, submits its command and arms the deadline.
// Every attempt is stamped with a fresh generation so the irq handler can
// match completions to the attempt that earned them.
func (d *NVMeBlockDev) push(cid uint16, pend *pendingBio) {
	pend.attempts++
	d.genSeq++
	pend.gen = d.genSeq
	pend.cmd.SetCDW(genDW, pend.gen)
	pend.cmd.SetCID(cid)
	d.inflight[cid] = pend
	for !d.qp.SQ.Push(&pend.cmd) {
		// SQ full despite the free-CID gate: back off and retry rather
		// than panicking; the next completion drains the queue.
		d.waitCID.Wait()
	}
	d.Submitted++
	d.dev.Ring(d.qp.SQ.ID)
	d.armDeadline(cid, pend)
}

// armDeadline schedules the timeout check for the current attempt.
func (d *NVMeBlockDev) armDeadline(cid uint16, pend *pendingBio) {
	if d.rec.Timeout <= 0 {
		return
	}
	attempt := pend.attempts
	d.env.After(d.rec.Timeout, func() {
		if d.inflight[cid] == pend && pend.attempts == attempt {
			d.onTimeout(cid, pend)
		}
	})
}

// onTimeout aborts a command that missed its deadline: the CID is
// quarantined against late completions and the command is either
// resubmitted after exponential backoff or failed to the bio issuer.
// Runs in scheduler callback context (non-blocking).
func (d *NVMeBlockDev) onTimeout(cid uint16, pend *pendingBio) {
	d.Timeouts++
	delete(d.inflight, cid)
	d.quarantine(cid, pend.gen)
	if pend.attempts > d.rec.MaxRetries {
		d.Aborts++
		d.finishBio(pend, nvme.SCAbortRequested)
		return
	}
	backoff := d.rec.Backoff << (pend.attempts - 1)
	d.env.After(backoff, func() {
		d.retryQ = append(d.retryQ, pend)
		d.retryCond.Signal(nil)
	})
}

// quarantine parks a lost CID until its completion shows up or the reclaim
// window expires (the stand-in for a queue reset reclaiming tags). The
// generation of the lost attempt is remembered so a completion arriving
// after reclaim — when the tag may already have a new occupant — can be
// recognized as stale by its generation echo instead of being delivered.
func (d *NVMeBlockDev) quarantine(cid uint16, gen uint32) {
	entry := lostCID{gen: gen, since: d.env.Now()}
	d.lost[cid] = entry
	d.env.After(d.rec.Reclaim, func() {
		if e, ok := d.lost[cid]; ok && e == entry {
			delete(d.lost, cid)
			d.Reclaimed++
			d.freeCIDs = append(d.freeCIDs, cid)
			d.waitCID.Signal(nil)
		}
	})
}

// retryLoop resubmits timed-out commands once their backoff elapses.
func (d *NVMeBlockDev) retryLoop(p *sim.Proc) {
	for {
		if len(d.retryQ) == 0 {
			d.retryCond.Wait()
			continue
		}
		pend := d.retryQ[0]
		d.retryQ = d.retryQ[1:]
		d.irq.Exec(p, d.costs.Submit)
		for len(d.freeCIDs) == 0 || d.qp.SQ.Full() {
			d.waitCID.Wait()
		}
		cid := d.freeCIDs[len(d.freeCIDs)-1]
		d.freeCIDs = d.freeCIDs[:len(d.freeCIDs)-1]
		d.Retries++
		d.push(cid, pend)
	}
}

func (d *NVMeBlockDev) irqLoop(p *sim.Proc) {
	var e nvme.Completion
	for {
		d.irqCond.Wait()
		for d.qp.CQ.Pop(&e) {
			d.irq.Exec(p, d.costs.Complete)
			cid := e.CID()
			gen := e.Result() // the device echoes the submission generation
			pend := d.inflight[cid]
			if pend == nil || pend.gen != gen {
				// A completion that doesn't belong to the tag's current
				// occupant: the late arrival of a timed-out attempt.
				if le, ok := d.lost[cid]; ok && le.gen == gen {
					// Still quarantined: release the tag.
					delete(d.lost, cid)
					d.Stale++
					d.freeCIDs = append(d.freeCIDs, cid)
					d.waitCID.Signal(nil)
				} else {
					// The tag was already reclaimed (and possibly reused
					// by pend): count it stale, never deliver it.
					d.StaleReclaimed++
				}
				continue
			}
			delete(d.inflight, cid)
			d.freeCIDs = append(d.freeCIDs, cid)
			d.waitCID.Signal(nil)
			d.finishBio(pend, e.Status())
		}
	}
}

// finishBio copies read data back, releases DMA resources and reports the
// final status. Safe from both process and callback context.
func (d *NVMeBlockDev) finishBio(pend *pendingBio, st nvme.Status) {
	if pend.bio.Op == BioRead && st.OK() {
		for i, pg := range pend.pages {
			off := i * guestmem.PageSize
			end := off + guestmem.PageSize
			if end > len(pend.bio.Data) {
				end = len(pend.bio.Data)
			}
			d.hostmem.ReadAt(pend.bio.Data[off:end], pg)
		}
		if d.verifier != nil && !d.verifier.VerifySectors(pend.bio.Sector, pend.bio.Data) {
			// The device returned data that contradicts its protection
			// info: surface a guard error instead of wrong data. The
			// payload stays in bio.Data for layers (the scrubber) that
			// diagnose the damage.
			d.GuardErrors++
			st = nvme.SCGuardCheck
		}
	}
	d.releaseDMA(pend)
	d.Completed++
	if pend.bio.OnDone != nil {
		pend.bio.OnDone(st)
	}
}

// releaseDMA returns the pending bio's bounce and PRP-list pages.
func (d *NVMeBlockDev) releaseDMA(pend *pendingBio) {
	if pend.pages != nil {
		d.pool.put(pend.pages)
		pend.pages = nil
	}
	for _, lp := range pend.listPages {
		d.pool.put([]uint64{lp})
	}
	pend.listPages = nil
}
