package extfs_test

import (
	"bytes"
	"testing"

	"nvmetro/internal/device"
	"nvmetro/internal/extfs"
	"nvmetro/internal/nvme"
	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// ramDisk is a trivial in-memory vm.Disk for filesystem unit tests.
type ramDisk struct {
	env   *sim.Env
	store *device.MemStore
	v     *vm.VM
}

func (d *ramDisk) BlockSize() uint32 { return 512 }
func (d *ramDisk) Blocks() uint64    { return 1 << 22 }
func (d *ramDisk) Submit(p *sim.Proc, vcpu *sim.Thread, r *vm.Req) {
	r.Submitted = p.Now()
	n := int(r.Blocks) * 512
	buf := make([]byte, n)
	switch r.Op {
	case vm.OpWrite:
		d.v.Mem.ReadAt(buf, r.Buf)
		d.store.WriteBlocks(r.LBA, buf)
	case vm.OpRead:
		d.store.ReadBlocks(r.LBA, buf)
		d.v.Mem.WriteAt(buf, r.Buf)
	}
	d.env.After(10*sim.Microsecond, func() { r.Complete(d.env, nvme.SCSuccess) })
}

func fsBed() (*sim.Env, *vm.VM, *ramDisk) {
	env := sim.New(1)
	cpu := sim.NewCPU(env, 2)
	v := vm.New(env, 0, cpu, 0, 1, 32<<20, vm.DefaultVirtCosts())
	return env, v, &ramDisk{env: env, store: device.NewMemStore(512), v: v}
}

func runP(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	ok := false
	env.Go("t", func(p *sim.Proc) { fn(p); ok = true; env.Stop() })
	env.RunUntil(sim.Time(120 * sim.Second))
	if !ok {
		t.Fatal("did not finish")
	}
	env.Close()
}

func TestCreateOpenDelete(t *testing.T) {
	env, v, disk := fsBed()
	runP(t, env, func(p *sim.Proc) {
		fs, err := extfs.Mount(p, v, disk, v.VCPU(0), extfs.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(p, "a", 4096, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Create(p, "a", 4096, false); err != extfs.ErrExists {
			t.Fatalf("dup create: %v", err)
		}
		if got, err := fs.Open("a"); err != nil || got != f {
			t.Fatalf("open: %v", err)
		}
		if err := fs.Delete(p, "a"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Open("a"); err != extfs.ErrNotFound {
			t.Fatalf("open deleted: %v", err)
		}
		if err := fs.Delete(p, "a"); err != extfs.ErrNotFound {
			t.Fatalf("double delete: %v", err)
		}
	})
}

func TestExtentLimits(t *testing.T) {
	env, v, disk := fsBed()
	runP(t, env, func(p *sim.Proc) {
		fs, _ := extfs.Mount(p, v, disk, v.VCPU(0), extfs.DefaultParams())
		f, _ := fs.Create(p, "small", 1024, false)
		if err := f.WriteAt(p, 900, make([]byte, 200)); err != extfs.ErrNoSpace {
			t.Fatalf("write past extent: %v", err)
		}
		if err := f.ReadAt(p, 1020, make([]byte, 10)); err == nil {
			t.Fatal("read past extent accepted")
		}
		// A file as large as the whole window fails (superblock reserve).
		if _, err := fs.Create(p, "huge", disk.Blocks()*512, false); err != extfs.ErrNoSpace {
			t.Fatalf("oversized create: %v", err)
		}
	})
}

func TestWindowedMountsAreIsolated(t *testing.T) {
	env, v, disk := fsBed()
	runP(t, env, func(p *sim.Proc) {
		half := disk.Blocks() / 2
		fs1, err := extfs.MountAt(p, v, disk, v.VCPU(0), extfs.DefaultParams(), 0, half)
		if err != nil {
			t.Fatal(err)
		}
		fs2, err := extfs.MountAt(p, v, disk, v.VCPU(0), extfs.DefaultParams(), half, half)
		if err != nil {
			t.Fatal(err)
		}
		f1, _ := fs1.Create(p, "x", 1<<20, false)
		f2, _ := fs2.Create(p, "x", 1<<20, false)
		a := bytes.Repeat([]byte{0xaa}, 8192)
		b := bytes.Repeat([]byte{0xbb}, 8192)
		f1.WriteAt(p, 0, a)
		f2.WriteAt(p, 0, b)
		got := make([]byte, 8192)
		f1.ReadAt(p, 0, got)
		if !bytes.Equal(got, a) {
			t.Fatal("window 1 corrupted by window 2")
		}
		f2.ReadAt(p, 0, got)
		if !bytes.Equal(got, b) {
			t.Fatal("window 2 corrupted")
		}
	})
}

func TestCacheHitAvoidsIO(t *testing.T) {
	env, v, disk := fsBed()
	runP(t, env, func(p *sim.Proc) {
		fs, _ := extfs.Mount(p, v, disk, v.VCPU(0), extfs.DefaultParams())
		f, _ := fs.Create(p, "c", 1<<20, false)
		f.WriteAt(p, 0, make([]byte, 4096))
		readsBefore := fs.Reads
		buf := make([]byte, 4096)
		for i := 0; i < 10; i++ {
			f.ReadAt(p, 0, buf)
		}
		if fs.Reads != readsBefore {
			t.Fatalf("cached reads issued %d disk reads", fs.Reads-readsBefore)
		}
		if fs.CacheHits == 0 {
			t.Fatal("no cache hits recorded")
		}
	})
}

func TestCacheEvictionWritesBackDirty(t *testing.T) {
	env, v, disk := fsBed()
	runP(t, env, func(p *sim.Proc) {
		params := extfs.DefaultParams()
		params.CacheBytes = 8 * extfs.CacheBlockSize // tiny cache
		fs, _ := extfs.Mount(p, v, disk, v.VCPU(0), params)
		f, _ := fs.Create(p, "wb", 1<<20, true)
		// Dirty far more blocks than the cache holds.
		data := bytes.Repeat([]byte{0x5e}, extfs.CacheBlockSize)
		for i := 0; i < 32; i++ {
			f.WriteAt(p, uint64(i)*extfs.CacheBlockSize, data)
		}
		f.Sync(p)
		// Everything must be readable back (evicted blocks were written).
		got := make([]byte, extfs.CacheBlockSize)
		for i := 0; i < 32; i++ {
			if err := f.ReadAt(p, uint64(i)*extfs.CacheBlockSize, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("block %d lost through eviction", i)
			}
		}
	})
}
