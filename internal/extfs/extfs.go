// Package extfs is a minimal extent-based filesystem running *inside the
// guest* over a vm.Disk — the ext4 stand-in under the key-value store for
// the YCSB evaluations. Files are preallocated extents (a good match for an
// LSM store's append-only WAL and immutable SSTables); a block cache plays
// the role of the guest page cache, and write-back files model journal-less
// ext4 behaviour, which is exactly how the paper configures its filesystem
// ("we disable the journal, discards and access time features").
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"nvmetro/internal/sim"
	"nvmetro/internal/vm"
)

// CacheBlockSize is the page-cache granule.
const CacheBlockSize = 4096

// Errors.
var (
	ErrExists   = errors.New("extfs: file exists")
	ErrNotFound = errors.New("extfs: file not found")
	ErrNoSpace  = errors.New("extfs: no space")
	ErrIO       = errors.New("extfs: I/O error")
)

// Params tunes the filesystem model.
type Params struct {
	CacheBytes int64        // page cache capacity
	CopyRate   float64      // guest memcpy bytes/sec for cache hits and staging
	OpCost     sim.Duration // per-call bookkeeping on the vCPU
}

// DefaultParams returns the standard guest filesystem configuration.
func DefaultParams() Params {
	return Params{CacheBytes: 64 << 20, CopyRate: 8e9, OpCost: 500 * sim.Nanosecond}
}

// FS is a mounted filesystem instance.
type FS struct {
	v      *vm.VM
	disk   vm.Disk
	vcpu   *sim.Thread
	params Params

	blockSize  uint32
	base       uint64 // first disk block of this instance's window
	diskBlocks uint64 // window end (exclusive), in disk blocks
	nextBlock  uint64 // bump allocator (disk blocks)
	files      map[string]*File

	cache     map[uint64][]byte // cache-block index -> data
	dirty     map[uint64]bool
	cacheLRU  []uint64
	xferBase  uint64   // guest-physical staging buffer
	xferPages []uint64 // its pages
	xferSize  uint32

	// Stats
	CacheHits, CacheMisses uint64
	Reads, Writes          uint64
}

// Mount formats a fresh filesystem over the whole disk (the simulation
// always starts cold, like a freshly mkfs'ed device in the paper's runs).
func Mount(p *sim.Proc, v *vm.VM, disk vm.Disk, vcpu *sim.Thread, params Params) (*FS, error) {
	return MountAt(p, v, disk, vcpu, params, 0, disk.Blocks())
}

// MountAt formats a filesystem over a block window of the disk, so several
// independent instances (one per benchmark job) can share one device.
func MountAt(p *sim.Proc, v *vm.VM, disk vm.Disk, vcpu *sim.Thread, params Params, startBlock, blocks uint64) (*FS, error) {
	fs := &FS{
		v: v, disk: disk, vcpu: vcpu, params: params,
		blockSize:  disk.BlockSize(),
		base:       startBlock,
		diskBlocks: startBlock + blocks,
		nextBlock:  startBlock + 8, // reserve a superblock area
		files:      make(map[string]*File),
		cache:      make(map[uint64][]byte),
		dirty:      make(map[uint64]bool),
		xferSize:   256 << 10,
	}
	base, pages, err := v.Mem.AllocBuffer(fs.xferSize)
	if err != nil {
		return nil, err
	}
	fs.xferBase = base
	fs.xferPages = pages
	if err := fs.writeSuper(p); err != nil {
		return nil, err
	}
	return fs, nil
}

// writeSuper persists a tiny superblock (magic + file count) — enough to
// exercise metadata writes without a full on-disk directory format.
func (fs *FS) writeSuper(p *sim.Proc) error {
	buf := make([]byte, fs.blockSize)
	binary.LittleEndian.PutUint64(buf[0:8], 0x4e564d4654524f46) // "NVMFTROF"
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(fs.files)))
	return fs.rawWrite(p, fs.base, buf)
}

// File is an open file backed by one extent.
type File struct {
	fs        *FS
	name      string
	start     uint64 // first disk block
	maxBytes  uint64
	size      uint64
	writeBack bool
}

// Create allocates a file with a fixed maximum size. writeBack files buffer
// writes in the cache (journal-less ext4 data path); write-through files
// hit the disk synchronously.
func (fs *FS) Create(p *sim.Proc, name string, maxBytes uint64, writeBack bool) (*File, error) {
	fs.vcpu.Exec(p, fs.params.OpCost)
	if _, ok := fs.files[name]; ok {
		return nil, ErrExists
	}
	blocks := (maxBytes + uint64(fs.blockSize) - 1) / uint64(fs.blockSize)
	if fs.nextBlock+blocks > fs.diskBlocks {
		return nil, ErrNoSpace
	}
	f := &File{fs: fs, name: name, start: fs.nextBlock, maxBytes: blocks * uint64(fs.blockSize), writeBack: writeBack}
	fs.nextBlock += blocks
	fs.files[name] = f
	if err := fs.writeSuper(p); err != nil {
		return nil, err
	}
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, nil
}

// Delete removes a file. Extents are not reclaimed (bump allocation), but a
// discard is issued so the device can trim — matching the paper disabling
// online discards but allowing explicit ones.
func (fs *FS) Delete(p *sim.Proc, name string) error {
	f, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	delete(fs.files, name)
	// Drop cached blocks.
	first := f.start * uint64(fs.blockSize) / CacheBlockSize
	last := (f.start*uint64(fs.blockSize) + f.maxBytes) / CacheBlockSize
	for cb := first; cb <= last; cb++ {
		delete(fs.cache, cb)
		delete(fs.dirty, cb)
	}
	return fs.writeSuper(p)
}

// Files lists file names (sorted).
func (fs *FS) Files() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns the file's current size.
func (f *File) Size() uint64 { return f.size }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// copyCost charges guest CPU for staging n bytes.
func (fs *FS) copyCost(p *sim.Proc, n int) {
	fs.vcpu.Exec(p, sim.Duration(float64(n)/fs.params.CopyRate*1e9))
}

// rawWrite writes whole blocks at a disk block address (no cache).
func (fs *FS) rawWrite(p *sim.Proc, blk uint64, data []byte) error {
	for off := 0; off < len(data); off += int(fs.xferSize) {
		end := off + int(fs.xferSize)
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		fs.v.Mem.WriteAt(chunk, fs.xferBase)
		fs.copyCost(p, len(chunk))
		r := &vm.Req{
			Op: vm.OpWrite, LBA: blk + uint64(off)/uint64(fs.blockSize),
			Blocks: uint32(len(chunk)) / fs.blockSize, Buf: fs.xferBase, BufPages: fs.xferPages,
		}
		if st := vm.SubmitAndWait(p, fs.disk, fs.vcpu, r); !st.OK() {
			return fmt.Errorf("%w: %v", ErrIO, st)
		}
		fs.Writes++
	}
	return nil
}

// rawRead reads whole blocks at a disk block address (no cache).
func (fs *FS) rawRead(p *sim.Proc, blk uint64, data []byte) error {
	for off := 0; off < len(data); off += int(fs.xferSize) {
		end := off + int(fs.xferSize)
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		r := &vm.Req{
			Op: vm.OpRead, LBA: blk + uint64(off)/uint64(fs.blockSize),
			Blocks: uint32(len(chunk)) / fs.blockSize, Buf: fs.xferBase, BufPages: fs.xferPages,
		}
		if st := vm.SubmitAndWait(p, fs.disk, fs.vcpu, r); !st.OK() {
			return fmt.Errorf("%w: %v", ErrIO, st)
		}
		fs.v.Mem.ReadAt(chunk, fs.xferBase)
		fs.copyCost(p, len(chunk))
		fs.Reads++
	}
	return nil
}

// cacheBlock loads (or creates) the cache block covering disk byte dboff.
func (fs *FS) cacheBlock(p *sim.Proc, cb uint64, load bool) ([]byte, error) {
	if b, ok := fs.cache[cb]; ok {
		fs.CacheHits++
		return b, nil
	}
	fs.CacheMisses++
	b := make([]byte, CacheBlockSize)
	if load {
		if err := fs.rawRead(p, cb*CacheBlockSize/uint64(fs.blockSize), b); err != nil {
			return nil, err
		}
	}
	fs.insertCache(p, cb, b)
	return b, nil
}

func (fs *FS) insertCache(p *sim.Proc, cb uint64, b []byte) {
	fs.cache[cb] = b
	fs.cacheLRU = append(fs.cacheLRU, cb)
	for int64(len(fs.cache))*CacheBlockSize > fs.params.CacheBytes && len(fs.cacheLRU) > 0 {
		victim := fs.cacheLRU[0]
		fs.cacheLRU = fs.cacheLRU[1:]
		if _, ok := fs.cache[victim]; !ok {
			continue
		}
		if fs.dirty[victim] {
			// Write back before eviction.
			fs.rawWrite(p, victim*CacheBlockSize/uint64(fs.blockSize), fs.cache[victim])
			delete(fs.dirty, victim)
		}
		delete(fs.cache, victim)
	}
}

// WriteAt writes data at the byte offset. Write-back files dirty the cache;
// write-through files also flush immediately.
func (f *File) WriteAt(p *sim.Proc, off uint64, data []byte) error {
	fs := f.fs
	fs.vcpu.Exec(p, fs.params.OpCost)
	if off+uint64(len(data)) > f.maxBytes {
		return ErrNoSpace
	}
	diskOff := f.start*uint64(fs.blockSize) + off
	// Stage through the cache at cache-block granularity.
	rem := data
	pos := diskOff
	for len(rem) > 0 {
		cb := pos / CacheBlockSize
		cbOff := int(pos % CacheBlockSize)
		n := CacheBlockSize - cbOff
		if n > len(rem) {
			n = len(rem)
		}
		// Partial overwrite of an unseen block must read it first.
		load := cbOff != 0 || n != CacheBlockSize
		b, err := fs.cacheBlock(p, cb, load)
		if err != nil {
			return err
		}
		copy(b[cbOff:cbOff+n], rem[:n])
		fs.dirty[cb] = true
		rem = rem[n:]
		pos += uint64(n)
	}
	fs.copyCost(p, len(data))
	if off+uint64(len(data)) > f.size {
		f.size = off + uint64(len(data))
	}
	if !f.writeBack {
		return f.syncRange(p, diskOff, uint64(len(data)))
	}
	return nil
}

// ReadAt fills buf from the byte offset, through the cache.
func (f *File) ReadAt(p *sim.Proc, off uint64, buf []byte) error {
	fs := f.fs
	fs.vcpu.Exec(p, fs.params.OpCost)
	if off+uint64(len(buf)) > f.maxBytes {
		return fmt.Errorf("%w: read beyond extent", ErrIO)
	}
	pos := f.start*uint64(fs.blockSize) + off
	rem := buf
	for len(rem) > 0 {
		cb := pos / CacheBlockSize
		cbOff := int(pos % CacheBlockSize)
		n := CacheBlockSize - cbOff
		if n > len(rem) {
			n = len(rem)
		}
		b, err := fs.cacheBlock(p, cb, true)
		if err != nil {
			return err
		}
		copy(rem[:n], b[cbOff:cbOff+n])
		rem = rem[n:]
		pos += uint64(n)
	}
	fs.copyCost(p, len(buf))
	return nil
}

// syncRange flushes dirty cache blocks covering [diskOff, diskOff+n).
func (f *File) syncRange(p *sim.Proc, diskOff, n uint64) error {
	fs := f.fs
	first := diskOff / CacheBlockSize
	last := (diskOff + n - 1) / CacheBlockSize
	for cb := first; cb <= last; cb++ {
		if !fs.dirty[cb] {
			continue
		}
		if err := fs.rawWrite(p, cb*CacheBlockSize/uint64(fs.blockSize), fs.cache[cb]); err != nil {
			return err
		}
		delete(fs.dirty, cb)
	}
	return nil
}

// Sync flushes all of the file's dirty blocks (fsync).
func (f *File) Sync(p *sim.Proc) error {
	if f.size == 0 {
		return nil
	}
	return f.syncRange(p, f.fs.blockSize2()*f.start, f.size)
}

func (fs *FS) blockSize2() uint64 { return uint64(fs.blockSize) }

// SyncAll flushes every dirty block plus a device flush.
func (fs *FS) SyncAll(p *sim.Proc) error {
	for cb, d := range fs.dirty {
		if !d {
			continue
		}
		if err := fs.rawWrite(p, cb*CacheBlockSize/uint64(fs.blockSize), fs.cache[cb]); err != nil {
			return err
		}
		delete(fs.dirty, cb)
	}
	r := &vm.Req{Op: vm.OpFlush}
	if st := vm.SubmitAndWait(p, fs.disk, fs.vcpu, r); !st.OK() {
		return fmt.Errorf("%w: flush %v", ErrIO, st)
	}
	return nil
}
