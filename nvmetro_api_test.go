package nvmetro_test

import (
	"bytes"
	"strings"
	"testing"

	"nvmetro"
	"nvmetro/internal/ebpf"
	"nvmetro/internal/vm"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()
	guest := sys.NewVM(2, 64<<20)
	disk := sys.AttachNVMetro(guest, sys.WholeDisk())

	data := bytes.Repeat([]byte{0xfe, 0xed}, 1024)
	ok := sys.Run(10*nvmetro.Second, func(p *nvmetro.Proc) {
		base, pages, err := guest.Mem.AllocBuffer(uint32(len(data)))
		if err != nil {
			t.Error(err)
			return
		}
		guest.Mem.WriteAt(data, base)
		w := &nvmetro.Req{Op: vm.OpWrite, LBA: 0, Blocks: 4, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), w); !st.OK() {
			t.Errorf("write: %v", st)
			return
		}
		got := make([]byte, len(data))
		r := &nvmetro.Req{Op: vm.OpRead, LBA: 0, Blocks: 4, Buf: base, BufPages: pages}
		if st := vm.SubmitAndWait(p, disk.Disk, guest.VCPU(0), r); !st.OK() {
			t.Errorf("read: %v", st)
			return
		}
		guest.Mem.ReadAt(got, base)
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
	})
	if !ok {
		t.Fatal("did not finish")
	}
}

func TestPublicAPIEncryptionAndFIO(t *testing.T) {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()
	guest := sys.NewVM(2, 64<<20)
	key := bytes.Repeat([]byte{9}, 64)
	disk := sys.AttachEncrypted(guest, sys.WholeDisk(), key, false)
	res := sys.RunFIO(nvmetro.FIOConfig{
		Mode: nvmetro.RandWrite, BlockSize: 4096, QD: 8,
		Warmup: nvmetro.Millisecond, Duration: 5 * nvmetro.Millisecond,
	}, disk.Targets(2))
	if res.Errors > 0 || res.Ops == 0 {
		t.Fatalf("encrypted fio: ops=%d errors=%d", res.Ops, res.Errors)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	for _, name := range []string{
		nvmetro.BaselineMDev, nvmetro.BaselinePassthrough, nvmetro.BaselineQEMU,
		nvmetro.BaselineVhostSCSI, nvmetro.BaselineSPDK,
	} {
		sys := nvmetro.NewSystem(nvmetro.Defaults())
		guest := sys.NewVM(1, 32<<20)
		disk, err := sys.AttachBaseline(name, guest, sys.WholeDisk())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := sys.RunFIO(nvmetro.FIOConfig{
			Mode: nvmetro.RandRead, BlockSize: 512, QD: 4,
			Warmup: nvmetro.Millisecond, Duration: 4 * nvmetro.Millisecond,
		}, disk.Targets(1))
		if res.Ops == 0 || res.Errors > 0 {
			t.Errorf("%s: ops=%d errors=%d", name, res.Ops, res.Errors)
		}
		sys.Close()
	}
	if _, err := (&struct{ *nvmetro.System }{nvmetro.NewSystem(nvmetro.Defaults())}).AttachBaseline("bogus", nil, nvmetro.Partition{}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestPublicAPIClassifierTools(t *testing.T) {
	sys := nvmetro.NewSystem(nvmetro.Defaults())
	defer sys.Close()
	part := sys.CarveDisk(2)[1]
	cfg := nvmetro.NewConfigMap(part)
	prog, err := nvmetro.AssembleClassifier(`
	mov r0, 0x410000
	exit
`, "trivial", map[string]ebpf.Map{"cfg": cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := nvmetro.VerifyClassifier(prog); err != nil {
		t.Fatal(err)
	}
	// A bad classifier must be rejected.
	bad, err := nvmetro.AssembleClassifier("ldxw r0, [r1+4096]\nexit", "bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nvmetro.VerifyClassifier(bad); err == nil {
		t.Fatal("verifier accepted an out-of-bounds classifier")
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	ids := nvmetro.Experiments()
	if len(ids) != 21 {
		t.Fatalf("experiments: %v", ids)
	}
	var sb strings.Builder
	if err := nvmetro.RunExperiment("table1", true, 1, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Classifier") {
		t.Fatal("table1 output missing")
	}
	if err := nvmetro.RunExperiment("nope", true, 1, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
